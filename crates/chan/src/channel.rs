//! Channel endpoints and the shared channel core.
//!
//! A channel is the [`Ring`] fast path plus an eventcount-style parking
//! protocol borrowed from the condvar's seq-word discipline:
//!
//! * Uncontended send/recv is a ring CAS — no locks, no event-word
//!   writes, no syscalls.
//! * A blocked side registers in a waiter count, snapshots its event
//!   word, re-checks the queue, and parks through
//!   [`sunmt_sync::strategy::park`] — an unbound thread lands on the
//!   user-level sleep queue and its LWP runs something else.
//! * The waking side bumps the event word and issues one
//!   `strategy::unpark(1)` *only when the waiter count says someone is
//!   parked*, so a send to a blocked receiver is one user-level wake
//!   (the scheduler elides the kernel futex syscall when the user sleep
//!   queue satisfied it) and a send to a polling receiver is free.
//!
//! Unbounded channels keep the same ring as their fast path and spill
//! into a mutex-guarded `VecDeque` only while the ring is full; per-sender
//! FIFO is preserved because a sender never writes the ring while the
//! spill holds messages.

use std::collections::VecDeque;
use std::sync::atomic::{fence, AtomicU32, AtomicU64, AtomicUsize, Ordering::SeqCst};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use sunmt_stat::Hs;
use sunmt_sync::strategy;
use sunmt_trace::Tag;

use crate::error::{RecvError, RecvTimeoutError, SendError, TryRecvError, TrySendError};
use crate::queue::Ring;

// ---------------------------------------------------------------------
// Always-on subsystem gauges, reported through the "chan" stat source.

pub(crate) static LIVE: AtomicU64 = AtomicU64::new(0);
pub(crate) static SENDS: AtomicU64 = AtomicU64::new(0);
pub(crate) static RECVS: AtomicU64 = AtomicU64::new(0);
pub(crate) static RECV_PARKS: AtomicU64 = AtomicU64::new(0);
pub(crate) static SEND_PARKS: AtomicU64 = AtomicU64::new(0);
pub(crate) static SPILLS: AtomicU64 = AtomicU64::new(0);
pub(crate) static SELECT_WAITS: AtomicU64 = AtomicU64::new(0);
pub(crate) static SELECT_WAKES: AtomicU64 = AtomicU64::new(0);
pub(crate) static ASYNC_WAKES: AtomicU64 = AtomicU64::new(0);

fn chan_stat_source() -> Vec<(String, u64)> {
    [
        ("channels", LIVE.load(SeqCst)),
        ("sends", SENDS.load(SeqCst)),
        ("recvs", RECVS.load(SeqCst)),
        ("recv_parks", RECV_PARKS.load(SeqCst)),
        ("send_parks", SEND_PARKS.load(SeqCst)),
        ("spills", SPILLS.load(SeqCst)),
        ("select_waits", SELECT_WAITS.load(SeqCst)),
        ("select_wakes", SELECT_WAKES.load(SeqCst)),
        ("async_wakes", ASYNC_WAKES.load(SeqCst)),
    ]
    .into_iter()
    .map(|(k, v)| (k.to_string(), v))
    .collect()
}

fn register_stat_source_once() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| sunmt_stat::register_source("chan", chan_stat_source));
}

// ---------------------------------------------------------------------
// One-shot wake registrations (select waiters and async wakers).

/// A select waiter's private event word; registered as a hook with every
/// channel the select covers, fired (once) by whichever sends first.
pub struct SelectEvent {
    pub(crate) word: AtomicU32,
}

impl SelectEvent {
    pub(crate) fn new() -> Arc<SelectEvent> {
        Arc::new(SelectEvent {
            word: AtomicU32::new(0),
        })
    }

    fn fire(&self) {
        self.word.fetch_add(1, SeqCst);
        strategy::unpark(&self.word, 1, false);
    }
}

/// A one-shot wake target attached to a channel's receive side. Hooks
/// are drained when they fire; both select and async re-register on
/// every wait/poll, so a stale hook is at worst one spurious wake.
/// (`pub` for visibility bookkeeping only — the `channel` module is
/// private, so this never leaves the crate.)
pub enum Hook {
    /// A [`crate::select::Select`] waiter's event word.
    Event(Arc<SelectEvent>),
    /// An async task's waker (the executor bridge).
    Task(std::task::Waker),
}

// ---------------------------------------------------------------------
// The shared channel core.

/// Spill storage for unbounded channels: a FIFO the senders overflow
/// into while the ring is full. `len` is read lock-free to keep the
/// empty-spill fast path away from the mutex.
struct Spill<T> {
    len: AtomicUsize,
    q: Mutex<VecDeque<T>>,
}

pub(crate) struct Chan<T> {
    ring: Ring<T>,
    /// `Some` for unbounded channels.
    spill: Option<Spill<T>>,
    /// Bumped when a message arrives (or the channel disconnects);
    /// blocked receivers park on it.
    recv_event: AtomicU32,
    /// Bumped when capacity frees up; blocked senders park on it.
    send_event: AtomicU32,
    recv_waiters: AtomicU32,
    send_waiters: AtomicU32,
    senders: AtomicUsize,
    receivers: AtomicUsize,
    /// One-shot select/async wake registrations, gated by `hook_count`
    /// so the send fast path never touches the mutex.
    hooks: Mutex<Vec<Hook>>,
    hook_count: AtomicUsize,
}

impl<T> Chan<T> {
    fn addr(&self) -> usize {
        self as *const Chan<T> as *const () as usize
    }

    pub(crate) fn len(&self) -> usize {
        let spilled = self.spill.as_ref().map_or(0, |s| s.len.load(SeqCst));
        self.ring.len() + spilled
    }

    /// Whether a `recv` would return without parking: a message is (or
    /// appears to be) present, or the senders are gone.
    pub(crate) fn recv_ready(&self) -> bool {
        self.len() > 0 || self.senders.load(SeqCst) == 0
    }

    /// Registers a one-shot wake target, deduplicating re-registrations
    /// from the same waiter (select loops and futures re-register every
    /// pass).
    pub(crate) fn register_hook(&self, hook: Hook) {
        let mut hooks = self.hooks.lock().unwrap_or_else(|e| e.into_inner());
        match hook {
            Hook::Event(ev) => {
                if !hooks
                    .iter()
                    .any(|h| matches!(h, Hook::Event(e) if Arc::ptr_eq(e, &ev)))
                {
                    hooks.push(Hook::Event(ev));
                }
            }
            Hook::Task(w) => {
                if let Some(slot) = hooks
                    .iter_mut()
                    .find(|h| matches!(h, Hook::Task(old) if old.will_wake(&w)))
                {
                    *slot = Hook::Task(w);
                } else {
                    hooks.push(Hook::Task(w));
                }
            }
        }
        self.hook_count.store(hooks.len(), SeqCst);
    }

    fn fire_hooks(&self) {
        let drained = {
            let mut hooks = self.hooks.lock().unwrap_or_else(|e| e.into_inner());
            self.hook_count.store(0, SeqCst);
            std::mem::take(&mut *hooks)
        };
        for h in drained {
            match h {
                Hook::Event(ev) => {
                    sunmt_trace::probe!(Tag::SelectWake, self.addr(), ev.word.as_ptr() as usize);
                    SELECT_WAKES.fetch_add(1, SeqCst);
                    ev.fire();
                }
                Hook::Task(w) => {
                    sunmt_trace::probe!(Tag::SelectWake, self.addr(), 0u32);
                    ASYNC_WAKES.fetch_add(1, SeqCst);
                    w.wake();
                }
            }
        }
    }

    /// Wakes everything on both sides; called when either side's last
    /// endpoint drops so no waiter sleeps through a disconnect.
    fn wake_all_for_disconnect(&self) {
        self.recv_event.fetch_add(1, SeqCst);
        strategy::unpark(&self.recv_event, u32::MAX, false);
        self.send_event.fetch_add(1, SeqCst);
        strategy::unpark(&self.send_event, u32::MAX, false);
        if self.hook_count.load(SeqCst) > 0 {
            self.fire_hooks();
        }
    }
}

impl<T: Send> Chan<T> {
    fn new(cap: Option<usize>) -> Arc<Chan<T>> {
        register_stat_source_once();
        LIVE.fetch_add(1, SeqCst);
        Arc::new(Chan {
            ring: Ring::with_capacity(cap.unwrap_or(UNBOUNDED_RING)),
            spill: cap.is_none().then(|| Spill {
                len: AtomicUsize::new(0),
                q: Mutex::new(VecDeque::new()),
            }),
            recv_event: AtomicU32::new(0),
            send_event: AtomicU32::new(0),
            recv_waiters: AtomicU32::new(0),
            send_waiters: AtomicU32::new(0),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
            hooks: Mutex::new(Vec::new()),
            hook_count: AtomicUsize::new(0),
        })
    }

    fn lock_spill<'a>(&self, s: &'a Spill<T>) -> std::sync::MutexGuard<'a, VecDeque<T>> {
        s.q.lock().unwrap_or_else(|e| e.into_inner())
    }

    // -- send side ----------------------------------------------------

    fn try_send_inner(&self, v: T) -> Result<(), TrySendError<T>> {
        if self.receivers.load(SeqCst) == 0 {
            return Err(TrySendError::Disconnected(v));
        }
        let Some(sp) = &self.spill else {
            // Bounded: the ring is the whole queue.
            return match self.ring.try_push(v) {
                Ok(()) => {
                    self.after_send();
                    Ok(())
                }
                Err(v) => Err(TrySendError::Full(v)),
            };
        };
        // Unbounded: ring while the spill is empty (per-sender FIFO —
        // once this sender observes a spill it keeps appending there
        // until a receiver drains it), spill otherwise.
        let mut v = v;
        if sp.len.load(SeqCst) == 0 {
            match self.ring.try_push(v) {
                Ok(()) => {
                    self.after_send();
                    return Ok(());
                }
                Err(back) => v = back,
            }
        }
        let mut q = self.lock_spill(sp);
        // The spill may have drained while we took the lock; retry the
        // ring under it so the spill is only ever used while truly full.
        if sp.len.load(SeqCst) == 0 {
            match self.ring.try_push(v) {
                Ok(()) => {
                    drop(q);
                    self.after_send();
                    return Ok(());
                }
                Err(back) => v = back,
            }
        }
        q.push_back(v);
        sp.len.fetch_add(1, SeqCst);
        drop(q);
        SPILLS.fetch_add(1, SeqCst);
        self.after_send();
        Ok(())
    }

    /// Publish-side epilogue: trace/stat the committed message, then
    /// wake one parked receiver and any select/async registrations.
    ///
    /// The `SeqCst` fence closes the store→load race between publishing
    /// the message and reading the waiter count: without it a receiver
    /// could register + re-check + park entirely inside our store
    /// buffer's shadow and the wake would be lost.
    fn after_send(&self) {
        let depth = self.len();
        sunmt_trace::probe!(Tag::ChanSend, self.addr(), depth);
        sunmt_stat::stat_record!(Hs::ChanDepth, depth);
        SENDS.fetch_add(1, SeqCst);
        fence(SeqCst);
        if self.recv_waiters.load(SeqCst) > 0 {
            self.recv_event.fetch_add(1, SeqCst);
            strategy::unpark(&self.recv_event, 1, false);
        }
        if self.hook_count.load(SeqCst) > 0 {
            self.fire_hooks();
        }
    }

    pub(crate) fn send(&self, v: T) -> Result<(), SendError<T>> {
        let t0 = sunmt_stat::tick();
        let mut v = v;
        loop {
            match self.try_send_inner(v) {
                Ok(()) => {
                    sunmt_stat::record_since(Hs::ChanSend, t0);
                    return Ok(());
                }
                Err(TrySendError::Disconnected(v)) => return Err(SendError(v)),
                Err(TrySendError::Full(back)) => v = back,
            }
            // Same park discipline as the receive side, on the
            // capacity event word.
            self.send_waiters.fetch_add(1, SeqCst);
            let seen = self.send_event.load(SeqCst);
            if self.ring.len() < self.ring.capacity() || self.receivers.load(SeqCst) == 0 {
                self.send_waiters.fetch_sub(1, SeqCst);
                continue;
            }
            sunmt_trace::probe!(Tag::ChanPark, self.addr(), 1u32);
            SEND_PARKS.fetch_add(1, SeqCst);
            strategy::park(&self.send_event, seen, false);
            self.send_waiters.fetch_sub(1, SeqCst);
        }
    }

    pub(crate) fn try_send(&self, v: T) -> Result<(), TrySendError<T>> {
        let t0 = sunmt_stat::tick();
        let r = self.try_send_inner(v);
        if r.is_ok() {
            sunmt_stat::record_since(Hs::ChanSend, t0);
        }
        r
    }

    // -- receive side -------------------------------------------------

    /// One pass over ring + spill, oldest first.
    fn pop_any(&self) -> Option<T> {
        if let Some(v) = self.ring.try_pop() {
            return Some(v);
        }
        let sp = self.spill.as_ref()?;
        if sp.len.load(SeqCst) == 0 {
            return None;
        }
        let mut q = self.lock_spill(sp);
        let v = q.pop_front();
        if v.is_some() {
            sp.len.fetch_sub(1, SeqCst);
        }
        v
    }

    pub(crate) fn try_recv(&self) -> Result<T, TryRecvError> {
        if let Some(v) = self.pop_any() {
            self.after_recv();
            return Ok(v);
        }
        if self.senders.load(SeqCst) == 0 {
            // A message may have been committed between the pop and the
            // sender-count read; disconnect only reports after a final
            // drain attempt so no message is stranded.
            if let Some(v) = self.pop_any() {
                self.after_recv();
                return Ok(v);
            }
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    /// Consume-side epilogue: trace the message out and wake one parked
    /// sender (same fence rationale as [`Chan::after_send`]).
    fn after_recv(&self) {
        sunmt_trace::probe!(Tag::ChanRecv, self.addr(), self.len());
        RECVS.fetch_add(1, SeqCst);
        fence(SeqCst);
        if self.send_waiters.load(SeqCst) > 0 {
            self.send_event.fetch_add(1, SeqCst);
            strategy::unpark(&self.send_event, 1, false);
        }
    }

    pub(crate) fn recv(&self) -> Result<T, RecvError> {
        let t0 = sunmt_stat::tick();
        loop {
            match self.try_recv() {
                Ok(v) => {
                    sunmt_stat::record_since(Hs::ChanRecv, t0);
                    return Ok(v);
                }
                Err(TryRecvError::Disconnected) => return Err(RecvError),
                Err(TryRecvError::Empty) => {}
            }
            self.recv_waiters.fetch_add(1, SeqCst);
            let seen = self.recv_event.load(SeqCst);
            // Re-check *after* registering: a sender that committed
            // before our fetch_add has already seen recv_waiters == 0
            // and will not wake anyone.
            if self.recv_ready() {
                self.recv_waiters.fetch_sub(1, SeqCst);
                continue;
            }
            sunmt_trace::probe!(Tag::ChanPark, self.addr(), 0u32);
            RECV_PARKS.fetch_add(1, SeqCst);
            strategy::park(&self.recv_event, seen, false);
            self.recv_waiters.fetch_sub(1, SeqCst);
        }
    }

    pub(crate) fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let t0 = sunmt_stat::tick();
        let deadline = sunmt_sys::time::monotonic_now() + timeout;
        loop {
            match self.try_recv() {
                Ok(v) => {
                    sunmt_stat::record_since(Hs::ChanRecv, t0);
                    return Ok(v);
                }
                Err(TryRecvError::Disconnected) => return Err(RecvTimeoutError::Disconnected),
                Err(TryRecvError::Empty) => {}
            }
            self.recv_waiters.fetch_add(1, SeqCst);
            let seen = self.recv_event.load(SeqCst);
            if self.recv_ready() {
                self.recv_waiters.fetch_sub(1, SeqCst);
                continue;
            }
            // Deadline is checked only after the message re-check, the
            // cv_timedwait discipline: a message that arrived during a
            // stale sleep beats an expired clock.
            let now = sunmt_sys::time::monotonic_now();
            if now >= deadline {
                self.recv_waiters.fetch_sub(1, SeqCst);
                return Err(RecvTimeoutError::Timeout);
            }
            sunmt_trace::probe!(Tag::ChanPark, self.addr(), 0u32);
            RECV_PARKS.fetch_add(1, SeqCst);
            strategy::park_timeout(&self.recv_event, seen, false, deadline - now);
            self.recv_waiters.fetch_sub(1, SeqCst);
        }
    }
}

impl<T> Drop for Chan<T> {
    fn drop(&mut self) {
        LIVE.fetch_sub(1, SeqCst);
    }
}

/// Ring size backing unbounded channels before they spill.
const UNBOUNDED_RING: usize = 64;

// ---------------------------------------------------------------------
// Public endpoints.

/// The sending half of a channel. Cloneable: every channel is
/// multi-producer.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

/// The receiving half of a channel. Cloneable: cloning makes the
/// channel multi-consumer (MPMC); keep a single `Receiver` for MPSC.
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

/// A bounded channel holding at least `cap` messages (rounded up to a
/// power of two). `send` parks when full; `recv` parks when empty.
pub fn bounded<T: Send>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let chan = Chan::new(Some(cap));
    (
        Sender {
            chan: Arc::clone(&chan),
        },
        Receiver { chan },
    )
}

/// An unbounded channel: `send` never blocks, `recv` parks when empty.
pub fn unbounded<T: Send>() -> (Sender<T>, Receiver<T>) {
    let chan = Chan::new(None);
    (
        Sender {
            chan: Arc::clone(&chan),
        },
        Receiver { chan },
    )
}

impl<T: Send> Sender<T> {
    /// Delivers `v`, parking while the channel is full. Fails only when
    /// every receiver is gone, handing the message back.
    pub fn send(&self, v: T) -> Result<(), SendError<T>> {
        self.chan.send(v)
    }

    /// Non-blocking send.
    pub fn try_send(&self, v: T) -> Result<(), TrySendError<T>> {
        self.chan.try_send(v)
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.chan.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.chan.len() == 0
    }
}

impl<T: Send> Receiver<T> {
    /// Takes the oldest message, parking while the channel is empty.
    /// Fails only when every sender is gone *and* the queue is drained.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.chan.recv()
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.chan.try_recv()
    }

    /// Like [`Receiver::recv`] with a deadline, layered on the same
    /// timed-sleep mechanism as `cv_timedwait` (the timer LWP enforces
    /// the deadline for unbound threads; no kernel timer is armed).
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        self.chan.recv_timeout(timeout)
    }

    /// The awaitable receive; see [`crate::exec`] for the executor
    /// bridge that drives it on an unbound thread.
    pub fn recv_async(&self) -> crate::exec::RecvFuture<'_, T> {
        crate::exec::RecvFuture::new(self)
    }

    /// A blocking iterator that ends when the channel disconnects.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { rx: self }
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.chan.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.chan.len() == 0
    }

    pub(crate) fn chan(&self) -> &Chan<T> {
        &self.chan
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Sender<T> {
        self.chan.senders.fetch_add(1, SeqCst);
        Sender {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Receiver<T> {
        self.chan.receivers.fetch_add(1, SeqCst);
        Receiver {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.chan.senders.fetch_sub(1, SeqCst) == 1 {
            self.chan.wake_all_for_disconnect();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if self.chan.receivers.fetch_sub(1, SeqCst) == 1 {
            self.chan.wake_all_for_disconnect();
        }
    }
}

/// Blocking iterator over a receiver; see [`Receiver::iter`].
pub struct Iter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T: Send> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

impl<'a, T: Send> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;

    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}
