//! Property tests for the log2 histogram (ISSUE 6 satellite): every
//! recorded value must land in a bucket whose bounds contain it, and the
//! interpolated quantile estimates must stay within one bucket of the
//! exact sample quantile. No external proptest crate — a seeded xorshift
//! generator drives many random distributions deterministically.

use sunmt_stat::hist::{bucket_hi, bucket_lo, bucket_of, Hist, NBUCKETS};

/// xorshift64*: tiny, seedable, good enough to sweep magnitudes.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A value whose magnitude (bit width) is itself uniform, so every
    /// bucket gets exercised, not just the 64-bit ones.
    fn value(&mut self) -> u64 {
        let bits = self.next() % 65;
        if bits == 0 {
            0
        } else {
            let v = self.next();
            (v >> (64 - bits)).max(1)
        }
    }
}

#[test]
fn every_value_lands_in_a_bucket_containing_it() {
    let mut rng = Rng(0x5eed_0001);
    for _ in 0..200_000 {
        let v = rng.value();
        let b = bucket_of(v);
        assert!(b < NBUCKETS, "bucket index {b} out of range for {v}");
        assert!(bucket_lo(b) <= v, "v={v} below lo of bucket {b}");
        // bucket_hi saturates at u64::MAX for the top bucket, making the
        // bound inclusive there.
        assert!(
            v < bucket_hi(b) || (b == NBUCKETS - 1 && v == u64::MAX),
            "v={v} not below hi of bucket {b}"
        );
    }
}

#[test]
fn quantile_estimates_stay_within_one_bucket_of_exact() {
    for seed in [1u64, 42, 0xdead_beef, 0x5eed_cafe, 7_777_777] {
        let mut rng = Rng(seed);
        let n = 2000 + (rng.next() % 3000) as usize;
        let mut h = Hist::default();
        let mut vals = Vec::with_capacity(n);
        for _ in 0..n {
            let v = rng.value();
            h.record(v);
            vals.push(v);
        }
        vals.sort_unstable();
        assert_eq!(h.count(), n as u64);
        assert_eq!(h.max, *vals.last().unwrap());
        for q in [0.5, 0.9, 0.99, 1.0] {
            let exact = vals[((q * n as f64).ceil() as usize).clamp(1, n) - 1];
            let est = h.quantile(q);
            // "Within one bucket": the estimate's bucket index is within
            // 1 of the exact sample quantile's bucket index.
            let be = bucket_of(exact) as i64;
            let bq = bucket_of(est.min(u64::MAX as f64) as u64) as i64;
            assert!(
                (be - bq).abs() <= 1,
                "seed {seed} q={q}: exact {exact} (bucket {be}) vs est {est} (bucket {bq})"
            );
        }
    }
}

#[test]
fn quantiles_are_monotone_in_q() {
    let mut rng = Rng(0xfeed_f00d);
    let mut h = Hist::default();
    for _ in 0..5000 {
        h.record(rng.value());
    }
    let qs: Vec<f64> = (1..=100).map(|i| i as f64 / 100.0).collect();
    let mut last = 0.0f64;
    for q in qs {
        let v = h.quantile(q);
        assert!(v >= last, "quantile not monotone at q={q}: {v} < {last}");
        last = v;
    }
    assert!(last <= h.max as f64 + 0.5);
}

#[test]
fn point_masses_are_recovered_exactly_to_bucket_resolution() {
    for point in [0u64, 1, 7, 100, 4096, 1 << 40] {
        let mut h = Hist::default();
        for _ in 0..999 {
            h.record(point);
        }
        let b = bucket_of(point);
        for q in [0.5, 0.99] {
            let est = h.quantile(q);
            assert!(
                bucket_lo(b) as f64 <= est && est <= bucket_hi(b) as f64,
                "point {point}: q={q} est {est} escaped bucket {b}"
            );
        }
    }
}
