//! Report rendering: the human lockstat-style table, the Prometheus-style
//! text exposition and the JSON snapshot.

use std::fmt::Write as _;

use crate::{snapshot, Ctr, Snapshot, Unit};

/// How many lock sites the human report shows.
const TOP_N: usize = 10;

fn fmt_site(addr: usize) -> String {
    if addr == 0 {
        "<overflow>".to_string()
    } else {
        format!("{addr:#x}")
    }
}

/// Renders the lockstat-style report for the current epoch: the top
/// lock sites by total block time, every latency histogram's quantiles,
/// the counters and the registered subsystem gauges.
pub fn stats_report() -> String {
    render_report(&snapshot())
}

/// [`stats_report`] over an already-taken [`Snapshot`].
pub fn render_report(s: &Snapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "sunmt-stat report");
    let _ = writeln!(
        out,
        "\nlock sites by total block time (top {}):",
        TOP_N.min(s.locks.len().max(1))
    );
    let _ = writeln!(
        out,
        "  {:<18} {:>10} {:>9} {:>6} {:>7} {:>9} {:>12} {:>12} {:>12}",
        "site",
        "acquires",
        "contended",
        "spin%",
        "parks",
        "avg-spin",
        "avg-hold-ns",
        "blk-tot-us",
        "blk-max-us"
    );
    if s.locks.is_empty() {
        let _ = writeln!(out, "  (no lock activity recorded)");
    }
    for l in s.locks.iter().take(TOP_N) {
        let avg_spin = if l.contended == 0 {
            0.0
        } else {
            l.spin_iters as f64 / l.contended as f64
        };
        let _ = writeln!(
            out,
            "  {:<18} {:>10} {:>9} {:>6.1} {:>7} {:>9.0} {:>12.0} {:>12.1} {:>12.1}",
            fmt_site(l.addr),
            l.acquires,
            l.contended,
            l.spin_ratio() * 100.0,
            l.parks,
            avg_spin,
            l.avg_hold_ns(),
            l.block_ns / 1_000.0,
            l.block_max_ns / 1_000.0,
        );
    }
    let _ = writeln!(out, "\nlatency histograms:");
    let _ = writeln!(
        out,
        "  {:<12} {:>10} {:>10} {:>10} {:>10} {:>12}  unit",
        "histogram", "count", "p50", "p90", "p99", "max"
    );
    for v in &s.hists {
        if v.count == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "  {:<12} {:>10} {:>10.0} {:>10.0} {:>10.0} {:>12.0}  {}",
            v.hs.name(),
            v.count,
            v.p50,
            v.p90,
            v.p99,
            v.max,
            if v.unit_label().is_empty() {
                "count"
            } else {
                v.unit_label()
            },
        );
    }
    let _ = writeln!(out, "\ncounters:");
    for c in Ctr::ALL {
        if s.counter(c) > 0 {
            let _ = writeln!(out, "  {:<24} {:>12}", c.name(), s.counter(c));
        }
    }
    for (name, kv) in &s.sources {
        let _ = writeln!(out, "\n{name}:");
        for (k, v) in kv {
            let _ = writeln!(out, "  {k:<24} {v:>12}");
        }
    }
    out
}

/// Renders the current epoch as a Prometheus-style text exposition
/// (counters, summary-style histogram quantiles, per-site lock gauges,
/// subsystem gauges).
pub fn prometheus() -> String {
    render_prometheus(&snapshot())
}

/// [`prometheus`] over an already-taken [`Snapshot`].
pub fn render_prometheus(s: &Snapshot) -> String {
    let mut out = String::new();
    for c in Ctr::ALL {
        let _ = writeln!(out, "# TYPE sunmt_{} counter", c.name());
        let _ = writeln!(out, "sunmt_{} {}", c.name(), s.counter(c));
    }
    for v in &s.hists {
        let suffix = match v.hs.unit() {
            Unit::Cycles => "_ns",
            Unit::Count => "",
        };
        let m = format!("sunmt_{}{suffix}", v.hs.name());
        let _ = writeln!(out, "# TYPE {m} summary");
        for (q, val) in [("0.5", v.p50), ("0.9", v.p90), ("0.99", v.p99)] {
            let _ = writeln!(out, "{m}{{quantile=\"{q}\"}} {val:.0}");
        }
        let _ = writeln!(out, "{m}_count {}", v.count);
        let _ = writeln!(out, "{m}_sum {:.0}", v.mean * v.count as f64);
    }
    let _ = writeln!(out, "# TYPE sunmt_lock_block_ns_total counter");
    for l in &s.locks {
        let _ = writeln!(
            out,
            "sunmt_lock_block_ns_total{{site=\"{}\"}} {:.0}",
            fmt_site(l.addr),
            l.block_ns
        );
        let _ = writeln!(
            out,
            "sunmt_lock_acquires_total{{site=\"{}\"}} {}",
            fmt_site(l.addr),
            l.acquires
        );
    }
    for (name, kv) in &s.sources {
        for (k, v) in kv {
            let _ = writeln!(out, "sunmt_{name}_{k} {v}");
        }
    }
    let _ = writeln!(out, "# TYPE sunmt_trace_dropped_total counter");
    let _ = writeln!(out, "sunmt_trace_dropped_total {}", s.trace_dropped);
    out
}

fn json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders the current epoch as one JSON object (counters, histogram
/// quantiles, lock sites, subsystem gauges) for machine consumption.
pub fn snapshot_json() -> String {
    render_json(&snapshot())
}

/// [`snapshot_json`] over an already-taken [`Snapshot`].
pub fn render_json(s: &Snapshot) -> String {
    let mut out = String::from("{\"counters\":{");
    for (i, c) in Ctr::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json_str(&mut out, c.name());
        let _ = write!(out, ":{}", s.counter(*c));
    }
    out.push_str("},\"hists\":[");
    for (i, v) in s.hists.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        json_str(&mut out, v.hs.name());
        out.push_str(",\"unit\":");
        json_str(&mut out, v.unit_label());
        let _ = write!(
            out,
            ",\"count\":{},\"mean\":{:.1},\"p50\":{:.1},\"p90\":{:.1},\"p99\":{:.1},\"max\":{:.1}}}",
            v.count, v.mean, v.p50, v.p90, v.p99, v.max
        );
    }
    out.push_str("],\"locks\":[");
    for (i, l) in s.locks.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"site\":");
        json_str(&mut out, &fmt_site(l.addr));
        let _ = write!(
            out,
            ",\"acquires\":{},\"contended\":{},\"spin_acquires\":{},\"parks\":{},\
             \"spin_iters\":{},\"block_ns\":{:.1},\"block_max_ns\":{:.1},\
             \"hold_ns\":{:.1},\"hold_count\":{}}}",
            l.acquires,
            l.contended,
            l.spin_acquires,
            l.parks,
            l.spin_iters,
            l.block_ns,
            l.block_max_ns,
            l.hold_ns,
            l.hold_count
        );
    }
    out.push_str("],\"sources\":{");
    for (i, (name, kv)) in s.sources.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json_str(&mut out, name);
        out.push_str(":{");
        for (j, (k, v)) in kv.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            json_str(&mut out, k);
            let _ = write!(out, ":{v}");
        }
        out.push('}');
    }
    let _ = write!(out, "}},\"trace_dropped\":{}", s.trace_dropped);
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lock, Hs};

    #[test]
    fn report_names_the_hot_site_and_shows_percentiles() {
        let _g = crate::test_lock();
        crate::enable();
        let addr = 0xabc0_4000usize;
        for _ in 0..100 {
            let t0 = lock::slow_begin(addr);
            lock::acquired_slow(addr, t0);
            lock::released(addr);
        }
        crate::record(Hs::RunqWait, 1000);
        crate::record(Hs::RunqWait, 4000);
        crate::disable();
        let r = stats_report();
        assert!(r.contains("0xabc04000"), "site missing:\n{r}");
        assert!(r.contains("runq_wait"), "runq hist missing:\n{r}");
        assert!(r.contains("mutex_hold"), "hold hist missing:\n{r}");
        assert!(r.contains("p50") && r.contains("p99"));
    }

    #[test]
    fn prometheus_exposition_has_types_and_quantiles() {
        let _g = crate::test_lock();
        crate::enable();
        crate::add(Ctr::CvMorph, 3);
        crate::record(Hs::IoWait, 123);
        crate::disable();
        let p = prometheus();
        assert!(p.contains("# TYPE sunmt_cv_morph counter"));
        assert!(p.contains("sunmt_cv_morph 3"));
        assert!(p.contains("sunmt_io_wait_ns{quantile=\"0.99\"}"));
        assert!(p.contains("sunmt_io_wait_ns_count 1"));
    }

    #[test]
    fn json_snapshot_is_well_formed_enough_to_eyeball() {
        let _g = crate::test_lock();
        crate::enable();
        crate::record(Hs::MutexSpin, 64);
        crate::disable();
        let j = snapshot_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "unbalanced braces: {j}"
        );
        assert!(j.contains("\"name\":\"mutex_spin\""));
        assert!(j.contains("\"counters\""));
        assert!(j.contains("\"locks\""));
    }
}
