//! Log2-bucketed histograms.
//!
//! A recorded value `v` lands in bucket `64 - v.leading_zeros()`: bucket 0
//! holds exactly `{0}` and bucket `i >= 1` holds `[2^(i-1), 2^i)`. That
//! makes recording one `leading_zeros` plus an array increment — no
//! floating point, no allocation — while still supporting p50/p90/p99
//! estimates by linear interpolation inside the winning bucket, accurate
//! to within one power-of-two bucket by construction.

/// Number of buckets: one for zero plus one per bit of a `u64`.
pub const NBUCKETS: usize = 65;

/// Bucket index for a value (see module docs for the bucket bounds).
#[inline(always)]
pub fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive lower bound of bucket `i`.
pub fn bucket_lo(i: usize) -> u64 {
    match i {
        0 => 0,
        _ => 1u64 << (i - 1),
    }
}

/// Exclusive upper bound of bucket `i` (saturating for the last bucket).
pub fn bucket_hi(i: usize) -> u64 {
    match i {
        0 => 1,
        64 => u64::MAX,
        _ => 1u64 << i,
    }
}

/// A plain (non-atomic) histogram: the merge/snapshot representation, and
/// the reference implementation the property tests exercise.
#[derive(Clone, Debug)]
pub struct Hist {
    /// Per-bucket observation counts.
    pub buckets: [u64; NBUCKETS],
    /// Sum of all recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
}

impl Default for Hist {
    fn default() -> Hist {
        Hist {
            buckets: [0; NBUCKETS],
            sum: 0,
            max: 0,
        }
    }
}

impl Hist {
    /// Records one observation.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean of the recorded values (0 if empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Adds another histogram's observations into this one.
    pub fn merge(&mut self, other: &Hist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Estimates the `q`-quantile (`0.0 < q <= 1.0`) by walking the
    /// cumulative bucket counts and interpolating linearly inside the
    /// bucket where the rank lands. The max observation caps the estimate
    /// so p99 of a single-bucket distribution never exceeds the true max.
    pub fn quantile(&self, q: f64) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        let rank = (q * n as f64).ceil().max(1.0);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let cum = seen + c;
            if (cum as f64) >= rank {
                let lo = bucket_lo(i) as f64;
                let hi = bucket_hi(i) as f64;
                let frac = (rank - seen as f64) / c as f64;
                let est = lo + (hi - lo) * frac;
                return est.min(self.max as f64);
            }
            seen = cum;
        }
        self.max as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_tile_the_u64_range() {
        assert_eq!(bucket_lo(0), 0);
        assert_eq!(bucket_hi(0), 1);
        for i in 1..NBUCKETS {
            assert_eq!(bucket_lo(i), bucket_hi(i - 1), "gap/overlap at {i}");
        }
        assert_eq!(bucket_hi(NBUCKETS - 1), u64::MAX);
    }

    #[test]
    fn bucket_of_matches_bounds_at_edges() {
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX / 2, u64::MAX] {
            let b = bucket_of(v);
            assert!(bucket_lo(b) <= v, "v={v} below bucket {b}");
            assert!(
                v < bucket_hi(b) || (b == 64 && v == u64::MAX),
                "v={v} above bucket {b}"
            );
        }
    }

    #[test]
    fn quantiles_of_a_point_mass_are_the_point_bucket() {
        let mut h = Hist::default();
        for _ in 0..1000 {
            h.record(100);
        }
        for q in [0.5, 0.9, 0.99] {
            let est = h.quantile(q);
            assert!(
                (64.0..=128.0).contains(&est),
                "q={q} est={est} outside [64,128]"
            );
        }
        assert_eq!(h.max, 100);
        assert_eq!(h.count(), 1000);
        assert!((h.mean() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn merge_is_additive() {
        let mut a = Hist::default();
        let mut b = Hist::default();
        a.record(5);
        b.record(500);
        b.record(7);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum, 512);
        assert_eq!(a.max, 500);
    }

    #[test]
    fn empty_hist_quantile_is_zero() {
        assert_eq!(Hist::default().quantile(0.99), 0.0);
    }
}
