//! The per-lock-site contention table (the `lockstat` half of the crate).
//!
//! A fixed, statically allocated open-addressed hash table keyed by the
//! lock's word address. Slots are claimed with a single CAS the first time
//! a lock is seen; after that every update is a relaxed `fetch_add` on the
//! claimed slot — no allocation, no locking, ever, exactly like the
//! kernel's `lockstat` per-site records. When the table fills (or a probe
//! chain exceeds its bound) updates fall into a shared overflow slot so
//! nothing is silently lost, only coarsened.
//!
//! The hold-time clock (`hold_t0`) lives in the site, not the mutex:
//! `sunmt_sync::Mutex` is `repr(C)`, zero-valid and ABI-frozen, so it
//! cannot grow a timestamp field. Writing `hold_t0` is race-free because
//! only the lock holder touches it — the mutex itself is the exclusion.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::Relaxed};

use crate::{enabled, record, Hs};
use sunmt_trace::clock;

/// Capacity of the site table (slot 0 is the shared overflow slot).
pub const NSITES: usize = 512;

/// How many linear-probe steps a lookup takes before giving up and using
/// the overflow slot.
const PROBE_LIMIT: usize = 16;

pub(crate) struct Site {
    /// Lock word address; 0 = unclaimed. The overflow slot stays 0.
    pub(crate) addr: AtomicUsize,
    pub(crate) acquires: AtomicU64,
    pub(crate) contended: AtomicU64,
    pub(crate) spin_acquires: AtomicU64,
    pub(crate) parks: AtomicU64,
    pub(crate) spin_iters: AtomicU64,
    pub(crate) block_cycles: AtomicU64,
    pub(crate) block_max: AtomicU64,
    pub(crate) hold_cycles: AtomicU64,
    pub(crate) hold_count: AtomicU64,
    /// Cycle timestamp of the in-progress hold; written only by the
    /// current lock holder, 0 when nobody holds (or stats were off at
    /// acquire, which makes the matching release a no-op).
    pub(crate) hold_t0: AtomicU64,
}

impl Site {
    const fn new() -> Site {
        Site {
            addr: AtomicUsize::new(0),
            acquires: AtomicU64::new(0),
            contended: AtomicU64::new(0),
            spin_acquires: AtomicU64::new(0),
            parks: AtomicU64::new(0),
            spin_iters: AtomicU64::new(0),
            block_cycles: AtomicU64::new(0),
            block_max: AtomicU64::new(0),
            hold_cycles: AtomicU64::new(0),
            hold_count: AtomicU64::new(0),
            hold_t0: AtomicU64::new(0),
        }
    }
}

static TABLE: [Site; NSITES] = [const { Site::new() }; NSITES];

/// Fibonacci-hashes a lock address into the table (same multiplier the
/// sleep-queue shards use).
#[inline]
fn slot_hash(addr: usize) -> usize {
    (addr.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 48) % NSITES
}

/// Finds (or claims) the site record for a lock address. Falls back to
/// the shared overflow slot when the neighborhood is full.
#[inline]
fn site_for(addr: usize) -> &'static Site {
    let mut h = slot_hash(addr);
    for _ in 0..PROBE_LIMIT {
        if h != 0 {
            let s = &TABLE[h];
            let cur = s.addr.load(Relaxed);
            if cur == addr {
                return s;
            }
            if cur == 0 && s.addr.compare_exchange(0, addr, Relaxed, Relaxed).is_ok() {
                return s;
            }
        }
        h = (h + 1) % NSITES;
    }
    &TABLE[0]
}

#[inline]
fn bump(cell: &AtomicU64, n: u64) {
    cell.fetch_add(n, Relaxed);
}

/// An uncontended (fast-path) acquire: counts it and starts the hold
/// clock. Call only while holding the lock.
#[inline]
pub fn acquired(addr: usize) {
    if !enabled() {
        return;
    }
    let s = site_for(addr);
    bump(&s.acquires, 1);
    s.hold_t0.store(clock::now_cycles(), Relaxed);
}

/// Entry to the contended slow path. Returns the cycle timestamp the
/// matching [`acquired_slow`] charges block time against (0 if disabled).
#[inline]
pub fn slow_begin(addr: usize) -> u64 {
    if !enabled() {
        return 0;
    }
    bump(&site_for(addr).contended, 1);
    clock::now_cycles()
}

/// Accounts an adaptive-spin phase: `iters` loop iterations, which either
/// acquired the lock or fell through to the sleep path.
#[inline]
pub fn spun(addr: usize, iters: u64, acquired: bool) {
    if !enabled() {
        return;
    }
    let s = site_for(addr);
    bump(&s.spin_iters, iters);
    if acquired {
        bump(&s.spin_acquires, 1);
    }
    record(Hs::MutexSpin, iters);
}

/// One futex park on the sleep path.
#[inline]
pub fn parked(addr: usize) {
    if !enabled() {
        return;
    }
    bump(&site_for(addr).parks, 1);
}

/// Slow-path acquire completed: charges block time since `t0` (from
/// [`slow_begin`]) and starts the hold clock. `t0 == 0` (stats were off
/// at entry) records the acquire but no block time.
#[inline]
pub fn acquired_slow(addr: usize, t0: u64) {
    if !enabled() {
        return;
    }
    let s = site_for(addr);
    let now = clock::now_cycles();
    if t0 != 0 {
        let d = now.saturating_sub(t0);
        bump(&s.block_cycles, d);
        s.block_max.fetch_max(d, Relaxed);
        record(Hs::MutexBlock, d);
    }
    bump(&s.acquires, 1);
    s.hold_t0.store(now, Relaxed);
}

/// Closes a generic blocking wait (readers/writer lock, semaphore):
/// charges block time since `t0` (from [`slow_begin`]) to the site
/// without acquire/hold tracking, which has no meaning for shared or
/// counting primitives. No-op when `t0 == 0`.
#[inline]
pub fn block_end(addr: usize, t0: u64) {
    if t0 == 0 || !enabled() {
        return;
    }
    let s = site_for(addr);
    let d = clock::now_cycles().saturating_sub(t0);
    bump(&s.block_cycles, d);
    s.block_max.fetch_max(d, Relaxed);
}

/// Release: closes the hold interval opened by [`acquired`] /
/// [`acquired_slow`]. Call while still holding the lock (before the word
/// is released) so `hold_t0` stays single-writer.
#[inline]
pub fn released(addr: usize) {
    if !enabled() {
        return;
    }
    let s = site_for(addr);
    let t0 = s.hold_t0.swap(0, Relaxed);
    if t0 != 0 {
        let d = clock::now_cycles().saturating_sub(t0);
        bump(&s.hold_cycles, d);
        bump(&s.hold_count, 1);
        record(Hs::MutexHold, d);
    }
}

/// One lock site's aggregated statistics, with cycle totals already
/// converted to nanoseconds.
#[derive(Clone, Debug)]
pub struct LockSnapshot {
    /// The lock word's address (0 for the shared overflow slot).
    pub addr: usize,
    /// Total successful acquires (fast + slow path).
    pub acquires: u64,
    /// Slow-path (contended) entries.
    pub contended: u64,
    /// Contended entries resolved by spinning alone.
    pub spin_acquires: u64,
    /// Futex parks taken on the sleep path.
    pub parks: u64,
    /// Total adaptive-spin loop iterations.
    pub spin_iters: u64,
    /// Total nanoseconds spent blocked (slow-path entry to acquire).
    pub block_ns: f64,
    /// Longest single block, nanoseconds.
    pub block_max_ns: f64,
    /// Total nanoseconds the lock was held (closed holds only).
    pub hold_ns: f64,
    /// Closed hold intervals.
    pub hold_count: u64,
}

impl LockSnapshot {
    /// Mean hold time in nanoseconds (0 if no closed holds).
    pub fn avg_hold_ns(&self) -> f64 {
        if self.hold_count == 0 {
            0.0
        } else {
            self.hold_ns / self.hold_count as f64
        }
    }

    /// Fraction of contended entries resolved by spinning (0..=1).
    pub fn spin_ratio(&self) -> f64 {
        if self.contended == 0 {
            0.0
        } else {
            self.spin_acquires as f64 / self.contended as f64
        }
    }
}

/// Snapshot of every active site, sorted by total block time descending
/// (the lockstat ordering). The overflow slot appears only if it saw
/// traffic.
pub fn snapshot() -> Vec<LockSnapshot> {
    let mut out = Vec::new();
    for (i, s) in TABLE.iter().enumerate() {
        let addr = s.addr.load(Relaxed);
        let acquires = s.acquires.load(Relaxed);
        if (addr == 0 && i != 0) || (acquires == 0 && s.contended.load(Relaxed) == 0) {
            continue;
        }
        out.push(LockSnapshot {
            addr,
            acquires,
            contended: s.contended.load(Relaxed),
            spin_acquires: s.spin_acquires.load(Relaxed),
            parks: s.parks.load(Relaxed),
            spin_iters: s.spin_iters.load(Relaxed),
            block_ns: clock::cycles_to_ns(s.block_cycles.load(Relaxed)),
            block_max_ns: clock::cycles_to_ns(s.block_max.load(Relaxed)),
            hold_ns: clock::cycles_to_ns(s.hold_cycles.load(Relaxed)),
            hold_count: s.hold_count.load(Relaxed),
        });
    }
    out.sort_by(|a, b| b.block_ns.total_cmp(&a.block_ns));
    out
}

/// Zeroes the whole table (start of a stats epoch). In-flight holds lose
/// their `hold_t0`, so their eventual release records nothing — by design.
pub(crate) fn reset() {
    for s in &TABLE {
        s.addr.store(0, Relaxed);
        for c in [
            &s.acquires,
            &s.contended,
            &s.spin_acquires,
            &s.parks,
            &s.spin_iters,
            &s.block_cycles,
            &s.block_max,
            &s.hold_cycles,
            &s.hold_count,
            &s.hold_t0,
        ] {
            c.store(0, Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_addresses_get_distinct_slots() {
        let _g = crate::test_lock();
        crate::enable();
        let a = 0x1000usize;
        let b = 0x2008usize;
        acquired(a);
        released(a);
        acquired(b);
        acquired(b); // second acquire without release: reuses the slot
        crate::disable();
        let snap = snapshot();
        let sa = snap.iter().find(|s| s.addr == a).expect("site a");
        let sb = snap.iter().find(|s| s.addr == b).expect("site b");
        assert_eq!(sa.acquires, 1);
        assert_eq!(sa.hold_count, 1);
        assert!(sa.hold_ns >= 0.0);
        assert_eq!(sb.acquires, 2);
    }

    #[test]
    fn table_exhaustion_coarsens_into_the_overflow_slot() {
        let _g = crate::test_lock();
        crate::enable();
        // Far more distinct addresses than slots: the tail must land in
        // overflow rather than disappearing.
        let n = 4 * NSITES;
        for i in 0..n {
            acquired(0x10_0000 + i * 8);
        }
        crate::disable();
        let snap = snapshot();
        let total: u64 = snap.iter().map(|s| s.acquires).sum();
        assert_eq!(total, n as u64, "acquires lost during overflow");
        let overflow = snap.iter().find(|s| s.addr == 0).expect("overflow slot");
        assert!(overflow.acquires > 0);
    }

    #[test]
    fn disabled_probes_record_nothing() {
        let _g = crate::test_lock();
        crate::enable();
        crate::disable();
        acquired(0xdead_0000);
        assert!(snapshot().iter().all(|s| s.addr != 0xdead_0000));
    }
}
