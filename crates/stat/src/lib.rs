//! lockstat/mpstat-style aggregate statistics for the threads library.
//!
//! `sunmt-trace` answers "what happened, in order"; this crate answers
//! "how much and how long" without replaying an event log — the split
//! Solaris shipped as `tnfprobes` vs `lockstat`/`mpstat`. The design
//! mirrors the `probe!` discipline exactly:
//!
//! - Every probe starts with one relaxed load of a global flag plus a
//!   predicted branch ([`enabled`]); the crate's `off` feature turns the
//!   flag into a constant `false` the optimizer deletes together with the
//!   probe body.
//! - Enabled counters and histograms write into a per-LWP block
//!   (registered in a global list, merged only at snapshot time), so the
//!   hot path is a thread-local load/add/store with no shared-line
//!   contention.
//! - Latency probes timestamp with [`sunmt_trace::clock::now_cycles`]
//!   (one `rdtsc`) and store raw cycles; conversion to nanoseconds
//!   happens once, at report time.
//! - Per-lock-site contention lives in [`lock`]: a fixed open-addressed
//!   table keyed by lock word address, claimed by CAS, updated with
//!   relaxed adds — the `lockstat` idiom.
//!
//! Results come out three ways: [`stats_report`] (human lockstat-style
//! tables), [`prometheus`] (text exposition), and [`snapshot_json`]
//! (machine-readable snapshot). Subsystems that keep their own always-on
//! counters (scheduler shards, poller) publish them through
//! [`register_source`] so every exposition includes them.

#![deny(missing_docs)]

pub mod hist;
pub mod lock;
pub mod report;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, OnceLock};

pub use hist::{Hist, NBUCKETS};
pub use lock::LockSnapshot;
pub use report::{prometheus, snapshot_json, stats_report};

/// Monotonic counter vocabulary. Extend by adding a variant and its row
/// in [`Ctr::ALL`]/[`Ctr::name`]; the indexed-array test keeps them
/// aligned.
#[repr(usize)]
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Ctr {
    /// `cv_broadcast` morphed waiters onto the mutex (wait morphing).
    CvMorph = 0,
    /// `cv_broadcast` fell back to waking every waiter.
    CvWakeAll = 1,
    /// `cv_signal` handoffs observed by the stat layer.
    CvSignal = 2,
    /// Calibration counter for the `abl_stat_overhead` bench; never
    /// incremented by the library itself.
    BenchProbe = 3,
}

/// Number of counters.
pub const NCTRS: usize = 4;

impl Ctr {
    /// Every counter, indexed by discriminant.
    pub const ALL: [Ctr; NCTRS] = [Ctr::CvMorph, Ctr::CvWakeAll, Ctr::CvSignal, Ctr::BenchProbe];

    /// Exposition name (`snake_case`, stable).
    pub fn name(self) -> &'static str {
        match self {
            Ctr::CvMorph => "cv_morph",
            Ctr::CvWakeAll => "cv_wake_all",
            Ctr::CvSignal => "cv_signal",
            Ctr::BenchProbe => "bench_probe",
        }
    }
}

/// What a histogram's recorded values mean, which fixes how reports
/// convert them for display.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Unit {
    /// Raw cycle deltas from [`sunmt_trace::clock::now_cycles`]; reports
    /// convert to nanoseconds.
    Cycles,
    /// Dimensionless counts (e.g. spin iterations); reported as-is.
    Count,
}

/// Latency/size histogram vocabulary.
#[repr(usize)]
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Hs {
    /// Runnable-to-dispatched wait: `push_runnable` to `run_one` pickup.
    RunqWait = 0,
    /// Mutex hold time (acquire to release), all sites merged.
    MutexHold = 1,
    /// Mutex block time (contended entry to acquire), all sites merged.
    MutexBlock = 2,
    /// Adaptive-mutex spin iterations per contended entry.
    MutexSpin = 3,
    /// I/O wait: thread parks for readiness until woken.
    IoWait = 4,
    /// Poller residence in `epoll_wait`.
    PollerWait = 5,
    /// Calibration histogram for the `abl_stat_overhead` bench.
    BenchLat = 6,
    /// Channel send latency (call to slot committed), all channels merged.
    ChanSend = 7,
    /// Channel receive latency (call to message out, including any park).
    ChanRecv = 8,
    /// Channel queue depth observed after each send.
    ChanDepth = 9,
}

/// Number of histograms.
pub const NHISTS: usize = 10;

impl Hs {
    /// Every histogram, indexed by discriminant.
    pub const ALL: [Hs; NHISTS] = [
        Hs::RunqWait,
        Hs::MutexHold,
        Hs::MutexBlock,
        Hs::MutexSpin,
        Hs::IoWait,
        Hs::PollerWait,
        Hs::BenchLat,
        Hs::ChanSend,
        Hs::ChanRecv,
        Hs::ChanDepth,
    ];

    /// Exposition name (`snake_case`, stable).
    pub fn name(self) -> &'static str {
        match self {
            Hs::RunqWait => "runq_wait",
            Hs::MutexHold => "mutex_hold",
            Hs::MutexBlock => "mutex_block",
            Hs::MutexSpin => "mutex_spin",
            Hs::IoWait => "io_wait",
            Hs::PollerWait => "poller_wait",
            Hs::BenchLat => "bench_lat",
            Hs::ChanSend => "chan_send",
            Hs::ChanRecv => "chan_recv",
            Hs::ChanDepth => "chan_depth",
        }
    }

    /// What the recorded values are.
    pub fn unit(self) -> Unit {
        match self {
            Hs::MutexSpin | Hs::ChanDepth => Unit::Count,
            _ => Unit::Cycles,
        }
    }
}

// ---------------------------------------------------------------------
// Per-LWP storage.

/// One histogram's atomic cells. Single-writer (the owning LWP) with
/// relaxed load+store increments; snapshot readers race benignly.
struct HistCells {
    buckets: [AtomicU64; NBUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistCells {
    const fn new() -> HistCells {
        HistCells {
            buckets: [const { AtomicU64::new(0) }; NBUCKETS],
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    #[inline]
    fn record(&self, v: u64) {
        let b = &self.buckets[hist::bucket_of(v)];
        b.store(b.load(Relaxed).wrapping_add(1), Relaxed);
        self.sum
            .store(self.sum.load(Relaxed).saturating_add(v), Relaxed);
        if v > self.max.load(Relaxed) {
            self.max.store(v, Relaxed);
        }
    }

    fn snapshot_into(&self, out: &mut Hist) {
        for (o, b) in out.buckets.iter_mut().zip(self.buckets.iter()) {
            *o += b.load(Relaxed);
        }
        out.sum = out.sum.saturating_add(self.sum.load(Relaxed));
        out.max = out.max.max(self.max.load(Relaxed));
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Relaxed);
        }
        self.sum.store(0, Relaxed);
        self.max.store(0, Relaxed);
    }
}

/// One LWP's stat block.
struct Block {
    counters: [AtomicU64; NCTRS],
    hists: [HistCells; NHISTS],
}

impl Block {
    fn new() -> Block {
        Block {
            counters: [const { AtomicU64::new(0) }; NCTRS],
            hists: [const { HistCells::new() }; NHISTS],
        }
    }
}

/// Every LWP's block, kept alive after LWP exit so snapshots still see
/// its tail (same lifetime rule as the trace rings).
fn registry() -> &'static Mutex<Vec<Arc<Block>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<Block>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static BLOCK: Arc<Block> = {
        let b = Arc::new(Block::new());
        registry().lock().expect("stat registry").push(Arc::clone(&b));
        b
    };
}

/// Global on/off switch, read by every probe.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether stat probes currently record. This is the entire
/// disabled-probe cost: one relaxed load and a branch (a constant `false`
/// under the `off` feature, which deletes the probe body outright).
#[inline(always)]
pub fn enabled() -> bool {
    if cfg!(feature = "off") {
        return false;
    }
    ENABLED.load(Relaxed)
}

/// Adds `n` to a counter. Called by [`stat_count!`] after its [`enabled`]
/// check; callable directly when the caller already tested it.
#[inline]
pub fn add(c: Ctr, n: u64) {
    let _ = BLOCK.try_with(|b| {
        let cell = &b.counters[c as usize];
        cell.store(cell.load(Relaxed).wrapping_add(n), Relaxed);
    });
}

/// Records one histogram observation. Called by [`stat_record!`] after
/// its [`enabled`] check.
#[inline]
pub fn record(h: Hs, v: u64) {
    let _ = BLOCK.try_with(|b| b.hists[h as usize].record(v));
}

/// Cycle timestamp for a latency interval, or 0 while stats are
/// disabled. Pair with [`record_since`]; a 0 start makes the pair free.
#[inline(always)]
pub fn tick() -> u64 {
    if enabled() {
        // `| 1` so a (theoretical) zero cycle reading still arms the pair.
        sunmt_trace::clock::now_cycles() | 1
    } else {
        0
    }
}

/// Closes a latency interval opened by [`tick`]: records `now - t0` into
/// `h`. No-op when `t0 == 0` (stats were off at the start) or stats are
/// off now.
#[inline]
pub fn record_since(h: Hs, t0: u64) {
    if t0 != 0 && enabled() {
        record(h, sunmt_trace::clock::now_cycles().saturating_sub(t0));
    }
}

/// Increments a counter if stats are enabled.
///
/// `stat_count!(Ctr::X)` adds 1; `stat_count!(Ctr::X, n)` adds `n`. The
/// macro body is a single branch on [`enabled`].
#[macro_export]
macro_rules! stat_count {
    ($c:expr) => {
        $crate::stat_count!($c, 1u64)
    };
    ($c:expr, $n:expr) => {
        if $crate::enabled() {
            $crate::add($c, ($n) as u64);
        }
    };
}

/// Records a histogram observation if stats are enabled.
#[macro_export]
macro_rules! stat_record {
    ($h:expr, $v:expr) => {
        if $crate::enabled() {
            $crate::record($h, ($v) as u64);
        }
    };
}

// ---------------------------------------------------------------------
// External gauge sources.

/// A named set of externally maintained gauges, sampled at snapshot time.
pub type SourceFn = fn() -> Vec<(String, u64)>;

fn sources() -> &'static Mutex<Vec<(&'static str, SourceFn)>> {
    static SOURCES: OnceLock<Mutex<Vec<(&'static str, SourceFn)>>> = OnceLock::new();
    SOURCES.get_or_init(|| Mutex::new(Vec::new()))
}

/// Registers (or replaces) a named gauge source. Subsystems with their
/// own always-on counters — scheduler shards, the poller — register here
/// once at init so every report/exposition includes them without this
/// crate depending on those layers.
pub fn register_source(name: &'static str, f: SourceFn) {
    let mut v = sources().lock().expect("stat sources");
    if let Some(slot) = v.iter_mut().find(|(n, _)| *n == name) {
        slot.1 = f;
    } else {
        v.push((name, f));
    }
}

// ---------------------------------------------------------------------
// Control and snapshot.

/// Starts a statistics epoch: zeroes every per-LWP block and the lock
/// table, then turns probes on.
pub fn enable() {
    for b in registry().lock().expect("stat registry").iter() {
        for c in &b.counters {
            c.store(0, Relaxed);
        }
        for h in &b.hists {
            h.reset();
        }
    }
    lock::reset();
    ENABLED.store(true, std::sync::atomic::Ordering::SeqCst);
}

/// Turns probes off. Accumulated data stays readable until the next
/// [`enable`].
pub fn disable() {
    ENABLED.store(false, std::sync::atomic::Ordering::SeqCst);
}

/// One histogram in a [`Snapshot`], with display-ready quantiles
/// (nanoseconds for [`Unit::Cycles`] histograms, raw values otherwise).
#[derive(Clone, Debug)]
pub struct HistView {
    /// Which histogram.
    pub hs: Hs,
    /// Merged raw-value histogram (cycles or counts per [`Hs::unit`]).
    pub raw: Hist,
    /// Observations.
    pub count: u64,
    /// Mean in display units.
    pub mean: f64,
    /// Median estimate in display units.
    pub p50: f64,
    /// 90th percentile estimate in display units.
    pub p90: f64,
    /// 99th percentile estimate in display units.
    pub p99: f64,
    /// Largest observation in display units.
    pub max: f64,
}

impl HistView {
    /// Display unit suffix (`"ns"` or `""`).
    pub fn unit_label(&self) -> &'static str {
        match self.hs.unit() {
            Unit::Cycles => "ns",
            Unit::Count => "",
        }
    }
}

/// A merged, display-ready copy of everything the crate tracks.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Counter totals, indexed like [`Ctr::ALL`].
    pub counters: [u64; NCTRS],
    /// Histogram views, indexed like [`Hs::ALL`].
    pub hists: Vec<HistView>,
    /// Lock sites, sorted by total block time descending.
    pub locks: Vec<LockSnapshot>,
    /// Registered gauge sources, sampled now.
    pub sources: Vec<(&'static str, Vec<(String, u64)>)>,
    /// Trace events lost to ring overwrites (process lifetime total from
    /// [`sunmt_trace::dropped`]); nonzero means the trace timeline has
    /// holes and the rings need draining more often.
    pub trace_dropped: u64,
}

impl Snapshot {
    /// Counter total for `c`.
    pub fn counter(&self, c: Ctr) -> u64 {
        self.counters[c as usize]
    }

    /// Histogram view for `h`.
    pub fn hist(&self, h: Hs) -> &HistView {
        &self.hists[h as usize]
    }
}

/// Merges every per-LWP block, the lock table and the gauge sources into
/// one [`Snapshot`]. Safe to call while probes run (relaxed reads race
/// benignly with writers).
pub fn snapshot() -> Snapshot {
    let blocks: Vec<Arc<Block>> = registry().lock().expect("stat registry").clone();
    let mut counters = [0u64; NCTRS];
    let mut raw: Vec<Hist> = (0..NHISTS).map(|_| Hist::default()).collect();
    for b in &blocks {
        for (i, c) in b.counters.iter().enumerate() {
            counters[i] = counters[i].wrapping_add(c.load(Relaxed));
        }
        for (i, h) in b.hists.iter().enumerate() {
            h.snapshot_into(&mut raw[i]);
        }
    }
    let hists = raw
        .into_iter()
        .zip(Hs::ALL.iter())
        .map(|(h, &hs)| {
            let to_disp = |v: f64| match hs.unit() {
                Unit::Cycles => v * sunmt_trace::clock::ns_per_cycle(),
                Unit::Count => v,
            };
            HistView {
                hs,
                count: h.count(),
                mean: to_disp(h.mean()),
                p50: to_disp(h.quantile(0.50)),
                p90: to_disp(h.quantile(0.90)),
                p99: to_disp(h.quantile(0.99)),
                max: to_disp(h.max as f64),
                raw: h,
            }
        })
        .collect();
    let sources = sources()
        .lock()
        .expect("stat sources")
        .iter()
        .map(|(n, f)| (*n, f()))
        .collect();
    Snapshot {
        counters,
        hists,
        locks: lock::snapshot(),
        sources,
        trace_dropped: sunmt_trace::dropped(),
    }
}

#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocabularies_are_indexed_by_discriminant() {
        for (i, c) in Ctr::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i);
        }
        for (i, h) in Hs::ALL.iter().enumerate() {
            assert_eq!(*h as usize, i);
        }
    }

    #[test]
    fn disabled_probes_cost_nothing_and_record_nothing() {
        let _g = test_lock();
        enable();
        disable();
        stat_count!(Ctr::BenchProbe);
        stat_record!(Hs::BenchLat, 42u64);
        assert_eq!(tick(), 0);
        record_since(Hs::BenchLat, 0);
        let s = snapshot();
        assert_eq!(s.counter(Ctr::BenchProbe), 0);
        assert_eq!(s.hist(Hs::BenchLat).count, 0);
    }

    #[test]
    fn counters_and_hists_merge_across_threads() {
        let _g = test_lock();
        enable();
        let mut handles = Vec::new();
        for t in 0..4u64 {
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    stat_count!(Ctr::BenchProbe);
                    stat_record!(Hs::BenchLat, t * 1000 + i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        disable();
        let s = snapshot();
        assert_eq!(s.counter(Ctr::BenchProbe), 4000);
        let v = s.hist(Hs::BenchLat);
        assert_eq!(v.count, 4000);
        // Display values are ns-scaled (BenchLat is a cycles histogram);
        // the raw merge must still see the largest recorded value.
        assert_eq!(v.raw.max, 3999);
        assert!(v.p50 > 0.0 && v.p50 <= v.p99);
        assert!(v.p99 <= v.max);
    }

    #[test]
    fn timed_interval_lands_in_a_cycles_histogram() {
        let _g = test_lock();
        enable();
        let t0 = tick();
        assert_ne!(t0, 0);
        std::thread::sleep(std::time::Duration::from_millis(2));
        record_since(Hs::BenchLat, t0);
        disable();
        let s = snapshot();
        let v = s.hist(Hs::BenchLat);
        assert_eq!(v.count, 1);
        // 2 ms sleep must read as >= 0.2 ms even with sloppy calibration.
        assert!(v.max >= 200_000.0, "max = {} ns", v.max);
    }

    #[test]
    fn enable_resets_the_previous_epoch() {
        let _g = test_lock();
        enable();
        stat_count!(Ctr::CvMorph);
        disable();
        assert_eq!(snapshot().counter(Ctr::CvMorph), 1);
        enable();
        disable();
        assert_eq!(snapshot().counter(Ctr::CvMorph), 0);
    }

    #[test]
    fn sources_are_sampled_and_replaceable() {
        let _g = test_lock();
        fn src_a() -> Vec<(String, u64)> {
            vec![("x".into(), 1)]
        }
        fn src_b() -> Vec<(String, u64)> {
            vec![("x".into(), 2)]
        }
        register_source("test_src", src_a);
        let s = snapshot();
        let (_, kv) = s
            .sources
            .iter()
            .find(|(n, _)| *n == "test_src")
            .expect("source registered");
        assert_eq!(kv[0], ("x".to_string(), 1));
        register_source("test_src", src_b);
        let s = snapshot();
        let (_, kv) = s.sources.iter().find(|(n, _)| *n == "test_src").unwrap();
        assert_eq!(kv[0].1, 2, "re-registration must replace");
    }
}
