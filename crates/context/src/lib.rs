//! Machine context switching and thread stacks.
//!
//! This crate implements step (a)–(d) of the paper's Figure 2: an LWP
//! "chooses a thread to run by locating the thread state in process memory",
//! loads its registers, executes it, and later "saves the state of the
//! thread back in memory" — all without entering the kernel. The register
//! save/restore is a handful of instructions of inline assembly
//! ([`arch::switch_context`]); everything else is safe bookkeeping around it.
//!
//! The crate also provides:
//!
//! * [`stack::Stack`] — `mmap`'ed thread stacks with a `PROT_NONE` guard
//!   page, plus [`stack::StackCache`], the "default stack that is cached by
//!   the threads package" used by the paper's Figure 5 measurement.
//! * [`Continuation`] — a prepared, not-yet-started thread context.
//! * [`self_switch`] — a save-and-restore-to-self round trip, the analog of
//!   the `setjmp()`/`longjmp()` baseline row of the paper's Figure 6.

#![deny(missing_docs)]

pub mod arch;
pub mod stack;

mod continuation;

pub use continuation::Continuation;

use arch::MachContext;

/// Saves the current machine context and immediately restores it.
///
/// This performs exactly one full register save plus one full register
/// restore and returns normally — the same work as the paper's "simple
/// routine that does a `setjmp()` and `longjmp()` to itself", used as the
/// baseline row of Figure 6.
#[inline]
pub fn self_switch(ctx: &mut MachContext) {
    // SAFETY: Saving into and immediately loading from the same context
    // restores the exact register state that was just captured (including
    // the stack pointer, whose top-of-stack return address is untouched), so
    // control returns to our caller normally.
    unsafe { arch::switch_context(ctx, ctx) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_switch_returns_and_preserves_locals() {
        let mut ctx = MachContext::zeroed();
        let a = 0xDEAD_BEEFu64;
        let b = 42.5f64;
        self_switch(&mut ctx);
        assert_eq!(a, 0xDEAD_BEEF);
        assert_eq!(b, 42.5);
        // The saved stack pointer must look like a real stack address.
        assert_ne!(ctx.rsp, 0);
    }

    #[test]
    fn self_switch_many_times() {
        let mut ctx = MachContext::zeroed();
        let mut counter = 0u32;
        for _ in 0..10_000 {
            self_switch(&mut ctx);
            counter += 1;
        }
        assert_eq!(counter, 10_000);
    }
}
