//! A prepared thread context owning its stack and entry closure.

use crate::arch::{self, MachContext};
use crate::stack::Stack;

type Payload = Box<dyn FnOnce() + Send + 'static>;

/// A suspended thread of control: a stack, the machine context saved in
/// process memory (the "thread state" box of the paper's Figure 2), and —
/// until first resumed — the entry closure.
///
/// `Continuation` is the building block shared by the threads library and
/// the baseline packages: each user-level thread is a `Continuation` plus
/// scheduling state.
pub struct Continuation {
    ctx: MachContext,
    stack: Stack,
    /// Entry closure, still owned by us until the first resume consumes it.
    /// A raw pointer because its address is baked into the prepared context.
    pending: *mut Payload,
}

// SAFETY: The stack and context are exclusively owned, and the payload
// closure is required to be Send, so the whole continuation may migrate
// between LWPs (that is the point of unbound threads).
unsafe impl Send for Continuation {}

impl Continuation {
    /// Prepares `f` to run on `stack` when first resumed.
    ///
    /// `f` must not return normally: a thread leaves its stack only by
    /// context-switching away forever (e.g. the threads library's
    /// `thread_exit`). If `f` does return, the process aborts with a
    /// diagnostic rather than executing off the end of the stack.
    pub fn new<F>(stack: Stack, f: F) -> Continuation
    where
        F: FnOnce() + Send + 'static,
    {
        let pending: *mut Payload = Box::into_raw(Box::new(Box::new(f) as Payload));
        // SAFETY: `stack.top()` is the high end of a live writable mapping,
        // and `cont_entry` never returns.
        let ctx = unsafe { arch::prepare(stack.top(), cont_entry, pending as usize) };
        Continuation {
            ctx,
            stack,
            pending,
        }
    }

    /// Suspends the caller into `save` and resumes this continuation.
    ///
    /// Returns when some other context switches back into `save`.
    ///
    /// # Safety
    ///
    /// * This continuation must be suspended (not currently running on any
    ///   LWP), and no other LWP may resume it concurrently.
    /// * `save` must remain valid until control returns to it.
    /// * The continuation must not be dropped while its closure is still
    ///   running on its stack.
    pub unsafe fn resume(&mut self, save: &mut MachContext) {
        if !self.pending.is_null() {
            // The first resume hands the closure to the trampoline.
            self.pending = core::ptr::null_mut();
        }
        // SAFETY: Upheld by the caller; `self.ctx` is either the freshly
        // prepared context or one saved by a previous switch out.
        unsafe { arch::switch_context(save, &self.ctx) };
    }

    /// The context slot this continuation suspends into; the scheduler
    /// passes it as the *save* side when switching away from this thread.
    pub fn context_mut(&mut self) -> &mut MachContext {
        &mut self.ctx
    }

    /// A raw pointer to the context slot, for schedulers that must name the
    /// save and load sides of one switch simultaneously.
    pub fn context_ptr(&mut self) -> *mut MachContext {
        &mut self.ctx
    }

    /// The stack backing this continuation.
    pub fn stack(&self) -> &Stack {
        &self.stack
    }

    /// Consumes the continuation and returns its stack for reuse.
    ///
    /// # Safety
    ///
    /// The continuation's closure must have finished (the thread exited) or
    /// never started, and nothing may ever resume this context again.
    pub unsafe fn into_stack(mut self) -> Stack {
        self.reclaim_pending();
        // Move the stack out without running Drop twice.
        let this = core::mem::ManuallyDrop::new(self);
        // SAFETY: `this` is never used again; the stack is read exactly once.
        unsafe { core::ptr::read(&this.stack) }
    }

    fn reclaim_pending(&mut self) {
        if !self.pending.is_null() {
            // SAFETY: The closure was never handed to the trampoline, so we
            // still own the box.
            drop(unsafe { Box::from_raw(self.pending) });
            self.pending = core::ptr::null_mut();
        }
    }
}

impl Drop for Continuation {
    fn drop(&mut self) {
        self.reclaim_pending();
    }
}

impl core::fmt::Debug for Continuation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Continuation")
            .field("started", &self.pending.is_null())
            .field("stack_top", &self.stack.top())
            .finish()
    }
}

extern "C" fn cont_entry(arg: usize) -> ! {
    {
        // SAFETY: `arg` is the Box::into_raw pointer from `new`, handed to
        // exactly one first resume.
        let f = unsafe { Box::from_raw(arg as *mut Payload) };
        f();
    }
    // The closure returned instead of switching away; there is no caller to
    // return to on this stack.
    eprintln!("sunmt-context: continuation entry returned; aborting");
    std::process::abort();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    // A scratch cell letting the test closure switch back out. Each test
    // builds one; the closure captures raw pointers to it.
    struct Yielder {
        main: MachContext,
        thread: *mut MachContext,
    }

    #[test]
    fn dropped_unstarted_continuation_frees_closure() {
        let flag = Arc::new(AtomicU32::new(0));
        let f2 = Arc::clone(&flag);
        let cont = Continuation::new(Stack::new(32 * 1024).unwrap(), move || {
            f2.store(1, Ordering::SeqCst);
        });
        drop(cont);
        assert_eq!(flag.load(Ordering::SeqCst), 0, "closure must not run");
        assert_eq!(Arc::strong_count(&flag), 1, "captured Arc must be freed");
    }

    #[test]
    fn continuation_runs_closure_and_suspends() {
        let mut y = Box::new(Yielder {
            main: MachContext::zeroed(),
            thread: core::ptr::null_mut(),
        });
        let log: Arc<AtomicU32> = Arc::new(AtomicU32::new(0));
        let log2 = Arc::clone(&log);
        let y_addr = &mut *y as *mut Yielder as usize;
        let mut cont = Continuation::new(Stack::new(64 * 1024).unwrap(), move || {
            log2.store(7, Ordering::SeqCst);
            // SAFETY: The test keeps `y` alive and single-threaded.
            let y = unsafe { &mut *(y_addr as *mut Yielder) };
            // SAFETY: `y.thread` points at this continuation's context slot,
            // set before resume; `y.main` was saved by that resume.
            unsafe { arch::switch_context(y.thread, &y.main) };
            unreachable!("never resumed again");
        });
        y.thread = cont.context_ptr();
        // SAFETY: Continuation is fresh; `y.main` lives across the switch.
        unsafe { cont.resume(&mut y.main) };
        assert_eq!(log.load(Ordering::SeqCst), 7);
        // Leak the continuation: its closure is parked forever mid-stack and
        // must not be dropped while "running". (Test-only; the threads
        // library always runs threads to exit.)
        core::mem::forget(cont);
    }
}
