//! x86-64 System V register context and the switch primitive.

use core::arch::naked_asm;

/// The saved machine state of a suspended thread.
///
/// Exactly the state the System V ABI requires a callee to preserve: the
/// stack pointer, the callee-saved integer registers, and the floating-point
/// control state (`mxcsr` control bits and the x87 control word). Everything
/// else is caller-saved and therefore already spilled by the compiler at any
/// call site of [`switch_context`].
///
/// The program counter is not stored explicitly: it lives on the thread's
/// stack as the return address that [`switch_context`]'s final `ret` pops —
/// the same trick as a `setjmp` buffer.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct MachContext {
    /// Saved stack pointer; `*rsp` holds the resume address.
    pub rsp: u64,
    /// Saved frame pointer.
    pub rbp: u64,
    /// Callee-saved `rbx`.
    pub rbx: u64,
    /// Callee-saved `r12` (holds the entry function in a fresh context).
    pub r12: u64,
    /// Callee-saved `r13` (holds the entry argument in a fresh context).
    pub r13: u64,
    /// Callee-saved `r14`.
    pub r14: u64,
    /// Callee-saved `r15`.
    pub r15: u64,
    /// SSE control/status register (control bits are callee-saved).
    pub mxcsr: u32,
    /// x87 FPU control word (callee-saved).
    pub fcw: u16,
    /// Padding to keep the struct a whole number of words.
    pub _pad: u16,
}

impl MachContext {
    /// Returns an all-zero context, suitable as the *save* side of a switch.
    pub const fn zeroed() -> MachContext {
        MachContext {
            rsp: 0,
            rbp: 0,
            rbx: 0,
            r12: 0,
            r13: 0,
            r14: 0,
            r15: 0,
            mxcsr: 0,
            fcw: 0,
            _pad: 0,
        }
    }
}

// Field offsets used by the assembly below; checked by a test.
#[cfg(test)]
const OFF_RSP: usize = 0x00;
#[cfg(test)]
const OFF_RBP: usize = 0x08;
#[cfg(test)]
const OFF_RBX: usize = 0x10;
#[cfg(test)]
const OFF_R12: usize = 0x18;
#[cfg(test)]
const OFF_R13: usize = 0x20;
#[cfg(test)]
const OFF_R14: usize = 0x28;
#[cfg(test)]
const OFF_R15: usize = 0x30;
#[cfg(test)]
const OFF_MXCSR: usize = 0x38;
#[cfg(test)]
const OFF_FCW: usize = 0x3c;

/// Saves the calling LWP's context into `save` and resumes the context in
/// `load`.
///
/// This is the entire kernel-free thread switch of the paper's Figure 2:
/// roughly twenty instructions, no mode change, no system call. Control
/// returns from this function only when some other party switches back into
/// `save`.
///
/// # Safety
///
/// * `save` must be valid for writes and `load` for reads, both of a whole
///   [`MachContext`].
/// * `load` must contain a context captured by a previous `switch_context`
///   call, produced by [`prepare`], or be the same pointer as `save`
///   (self-switch).
/// * The stack the loaded context runs on must outlive its execution, and no
///   two LWPs may load the same context concurrently.
#[unsafe(naked)]
pub unsafe extern "C" fn switch_context(save: *mut MachContext, load: *const MachContext) {
    naked_asm!(
        // Save the current context. The return address of this very call is
        // at [rsp]; saving rsp is what saves the PC.
        "mov [rdi + 0x00], rsp",
        "mov [rdi + 0x08], rbp",
        "mov [rdi + 0x10], rbx",
        "mov [rdi + 0x18], r12",
        "mov [rdi + 0x20], r13",
        "mov [rdi + 0x28], r14",
        "mov [rdi + 0x30], r15",
        "stmxcsr [rdi + 0x38]",
        "fnstcw [rdi + 0x3c]",
        // Load the target context.
        "mov rsp, [rsi + 0x00]",
        "mov rbp, [rsi + 0x08]",
        "mov rbx, [rsi + 0x10]",
        "mov r12, [rsi + 0x18]",
        "mov r13, [rsi + 0x20]",
        "mov r14, [rsi + 0x28]",
        "mov r15, [rsi + 0x30]",
        "ldmxcsr [rsi + 0x38]",
        "fldcw [rsi + 0x3c]",
        // Pop the target's resume address and jump to it.
        "ret",
    )
}

/// First-instruction trampoline of every fresh thread context.
///
/// [`prepare`] parks the entry function in `r12` and its argument in `r13`
/// (both callee-saved, so [`switch_context`] loads them). The trampoline
/// moves the argument into the first-parameter register, aligns the stack as
/// the ABI demands, and calls the entry. The entry function must never
/// return — thread termination is a context switch away from the thread —
/// so falling through hits `ud2` and faults loudly instead of executing
/// garbage.
#[unsafe(naked)]
unsafe extern "C" fn thread_trampoline() {
    naked_asm!(
        // A zero frame pointer terminates unwinder / backtrace walks here.
        "xor rbp, rbp",
        "mov rdi, r13",
        // `call` requires rsp % 16 == 0 at the call site.
        "and rsp, -16",
        "call r12",
        "ud2",
    )
}

/// Builds a fresh context that will run `entry(arg)` on the given stack when
/// first switched to.
///
/// `stack_top` is the *high* end of the stack region (x86-64 stacks grow
/// down).
///
/// # Safety
///
/// `stack_top` must be the top of a writable region large enough for
/// `entry`'s execution, and `entry` must never return.
pub unsafe fn prepare(
    stack_top: *mut u8,
    entry: extern "C" fn(usize) -> !,
    arg: usize,
) -> MachContext {
    let mut top = stack_top as usize;
    // Align, then reserve one slot for the resume address.
    top &= !15usize;
    top -= core::mem::size_of::<usize>();
    // SAFETY: `top` is in the caller-guaranteed writable stack region.
    unsafe { (top as *mut usize).write(thread_trampoline as *const () as usize) };
    MachContext {
        rsp: top as u64,
        rbp: 0,
        rbx: 0,
        r12: entry as usize as u64,
        r13: arg as u64,
        r14: 0,
        r15: 0,
        // Power-on default control words: round-to-nearest, all exceptions
        // masked, 64-bit x87 precision.
        mxcsr: 0x1F80,
        fcw: 0x037F,
        _pad: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::mem::offset_of;

    #[test]
    fn asm_offsets_match_struct_layout() {
        assert_eq!(offset_of!(MachContext, rsp), OFF_RSP);
        assert_eq!(offset_of!(MachContext, rbp), OFF_RBP);
        assert_eq!(offset_of!(MachContext, rbx), OFF_RBX);
        assert_eq!(offset_of!(MachContext, r12), OFF_R12);
        assert_eq!(offset_of!(MachContext, r13), OFF_R13);
        assert_eq!(offset_of!(MachContext, r14), OFF_R14);
        assert_eq!(offset_of!(MachContext, r15), OFF_R15);
        assert_eq!(offset_of!(MachContext, mxcsr), OFF_MXCSR);
        assert_eq!(offset_of!(MachContext, fcw), OFF_FCW);
    }

    // A two-context ping-pong exercising prepare + switch directly.
    struct PingPong {
        main: MachContext,
        coro: MachContext,
        log: Vec<u32>,
    }

    extern "C" fn coro_entry(arg: usize) -> ! {
        // SAFETY: `arg` is the PingPong the test stack-allocated; it outlives
        // the coroutine because the test joins before returning.
        let pp = unsafe { &mut *(arg as *mut PingPong) };
        pp.log.push(1);
        // SAFETY: Both contexts are valid; `main` was saved by the switch
        // that got us here.
        unsafe { switch_context(&mut pp.coro, &pp.main) };
        pp.log.push(3);
        // SAFETY: As above.
        unsafe { switch_context(&mut pp.coro, &pp.main) };
        unreachable!("coroutine resumed after final yield");
    }

    #[test]
    fn prepared_context_runs_and_yields() {
        let stack = crate::stack::Stack::new(64 * 1024).expect("stack");
        let mut pp = Box::new(PingPong {
            main: MachContext::zeroed(),
            coro: MachContext::zeroed(),
            log: Vec::new(),
        });
        // SAFETY: The stack outlives the coroutine; coro_entry never returns.
        pp.coro = unsafe { prepare(stack.top(), coro_entry, &mut *pp as *mut PingPong as usize) };

        pp.log.push(0);
        let pp_ptr: *mut PingPong = &mut *pp;
        // SAFETY: Fresh context on a live stack; main is the save slot.
        unsafe { switch_context(&mut (*pp_ptr).main, &(*pp_ptr).coro) };
        pp.log.push(2);
        // SAFETY: `coro` was saved by the coroutine's first yield.
        unsafe { switch_context(&mut (*pp_ptr).main, &(*pp_ptr).coro) };
        pp.log.push(4);

        assert_eq!(pp.log, vec![0, 1, 2, 3, 4]);
    }
}
