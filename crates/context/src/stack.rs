//! Thread stacks: guarded `mmap` regions and the default-stack cache.
//!
//! The paper lets the programmer supply a stack (`stack_addr`/`stack_size`
//! arguments of `thread_create()`) "so as not to interfere with its memory
//! allocator", or have the library allocate one. Library-allocated stacks
//! here are dedicated anonymous mappings with a `PROT_NONE` guard page at
//! the low end, so runaway recursion faults instead of corrupting a
//! neighbouring thread's stack. The Figure 5 creation-time measurement uses
//! "a default stack that is cached by the threads package" —
//! [`StackCache`] is that cache.

use std::sync::Mutex;

use sunmt_sys::mem::{self, Prot, PAGE_SIZE};
use sunmt_sys::Errno;

/// The default usable stack size for library-allocated stacks.
pub const DEFAULT_STACK_SIZE: usize = 128 * 1024;

/// An owned, guarded thread stack.
///
/// Layout (addresses increasing):
///
/// ```text
/// base                        base+PAGE_SIZE                 top()
///  |--- guard page (no access) |--- usable stack, grows down --|
/// ```
#[derive(Debug)]
pub struct Stack {
    base: *mut u8,
    total: usize,
    /// Guard bytes at the low end (0 for borrowed regions).
    guard: usize,
    /// Whether we own (and must unmap) the region.
    owned: bool,
}

// SAFETY: A Stack exclusively owns its mapping; the raw pointer is not
// aliased and the mapping is valid in any thread of the process.
unsafe impl Send for Stack {}
// SAFETY: Shared references to a Stack only read its base/size metadata.
unsafe impl Sync for Stack {}

impl Stack {
    /// Maps a new stack with at least `usable` usable bytes below a guard
    /// page.
    pub fn new(usable: usize) -> Result<Stack, Errno> {
        let usable = usable.max(PAGE_SIZE).next_multiple_of(PAGE_SIZE);
        let total = usable + PAGE_SIZE;
        let base = mem::map_anonymous(total, Prot::READ_WRITE)?;
        // SAFETY: `base` is the start of our fresh private mapping and
        // nothing references it yet.
        unsafe { mem::protect(base, PAGE_SIZE, Prot::NONE)? };
        Ok(Stack {
            base,
            total,
            guard: PAGE_SIZE,
            owned: true,
        })
    }

    /// Adopts a caller-supplied memory region as a stack.
    ///
    /// This is the paper's `thread_create(stack_addr, stack_size, ...)`
    /// path: "this allows a language run-time library to control thread
    /// storage without interference with its memory allocator". The region
    /// gets no guard page and is never freed by us — "if a stack was
    /// supplied by the programmer ... it may be reclaimed when
    /// `thread_wait()` returns successfully".
    ///
    /// # Safety
    ///
    /// `base..base+len` must be writable, 16-byte-alignable memory that
    /// outlives every use of the returned stack and is used by nothing else.
    pub unsafe fn from_raw_parts(base: *mut u8, len: usize) -> Stack {
        Stack {
            base,
            total: len,
            guard: 0,
            owned: false,
        }
    }

    /// Whether this stack is a library-owned mapping (as opposed to a
    /// caller-supplied region).
    pub fn is_owned(&self) -> bool {
        self.owned
    }

    /// The high end of the stack — the initial stack pointer (stacks grow
    /// down on x86-64).
    pub fn top(&self) -> *mut u8 {
        // SAFETY: `base + total` is one-past-the-end of the owned mapping,
        // which is a valid provenance-preserving computation.
        unsafe { self.base.add(self.total) }
    }

    /// The low end of the usable region (just above the guard page, if
    /// any).
    pub fn limit(&self) -> *mut u8 {
        // SAFETY: In-bounds offset within the region.
        unsafe { self.base.add(self.guard) }
    }

    /// Usable bytes between [`Self::limit`] and [`Self::top`].
    pub fn usable(&self) -> usize {
        self.total - self.guard
    }

    /// Tells the kernel the usable pages may be lazily reclaimed
    /// (`MADV_FREE`). The mapping — and the guard page's `PROT_NONE` —
    /// stays intact; the next thread to run on this stack just writes over
    /// whatever survived. Called on stacks parked deep in the cache, so an
    /// idle process's stack hoard costs address space, not memory.
    pub fn advise_free(&self) {
        if self.owned {
            // SAFETY: `limit()..top()` is a page-aligned sub-range of our
            // own mapping (the guard page is excluded), and a parked stack
            // has no live contents anyone will read.
            let _ = unsafe { mem::advise(self.limit(), self.usable(), mem::Advice::FREE) };
        }
    }
}

impl Drop for Stack {
    fn drop(&mut self) {
        if self.owned {
            // SAFETY: `base..base+total` is exactly the mapping created in
            // `new`; dropping the Stack proves no references remain.
            let _ = unsafe { mem::unmap(self.base, self.total) };
        }
    }
}

/// How many of the hottest cached stacks keep their pages. The cache is a
/// LIFO, so the top `CACHE_LOW_WATER` entries are the ones the next
/// creates will pop; everything that sinks deeper than that has its pages
/// handed back to the kernel with `MADV_FREE` — a burst of thread churn
/// can strand hundreds of 128 KiB stacks here, and below the waterline
/// their memory is pure waste. The mark is deliberately generous (8 MiB
/// of hot stacks): reusing an advised stack pays zero-fill faults, so
/// advising inside a cache depth a workload actually cycles through
/// (Figure 5 circulates dozens) would silently tax every create.
pub const CACHE_LOW_WATER: usize = 64;

#[derive(Debug, Default)]
struct CacheInner {
    free: Vec<Stack>,
    /// `free[..advised]` have had their pages `MADV_FREE`d. Tracking the
    /// boundary keeps the advise one-shot per entry: a cache hovering
    /// around the waterline must not re-advise the same cold stack on
    /// every put.
    advised: usize,
}

/// A free list of default-sized stacks.
///
/// Thread exit returns the stack here; thread creation takes one without
/// entering the kernel, which is what makes unbound thread creation two
/// orders of magnitude cheaper than LWP creation in Figure 5. The per-LWP
/// magazines in the core crate batch their refills and drains through this
/// depot ([`Self::take_batch`]/[`Self::put_batch`]), paying its lock once
/// per batch rather than once per create/exit.
#[derive(Debug, Default)]
pub struct StackCache {
    inner: Mutex<CacheInner>,
}

impl StackCache {
    /// Creates an empty cache.
    pub const fn new() -> StackCache {
        StackCache {
            inner: Mutex::new(CacheInner {
                free: Vec::new(),
                advised: 0,
            }),
        }
    }

    /// Takes a cached default stack, or maps a fresh one.
    pub fn take(&self) -> Result<Stack, Errno> {
        let popped = {
            let mut c = self.inner.lock().expect("stack cache poisoned");
            let s = c.free.pop();
            c.advised = c.advised.min(c.free.len());
            s
        };
        match popped {
            Some(s) => Ok(s),
            None => Stack::new(DEFAULT_STACK_SIZE),
        }
    }

    /// Takes up to `n` cached default stacks (possibly none); never maps.
    pub fn take_batch(&self, n: usize) -> Vec<Stack> {
        let mut c = self.inner.lock().expect("stack cache poisoned");
        let at = c.free.len() - n.min(c.free.len());
        let batch = c.free.split_off(at);
        c.advised = c.advised.min(c.free.len());
        batch
    }

    /// Returns a default-sized stack to the cache; other sizes are unmapped
    /// and caller-supplied regions are simply released (never freed).
    /// Entries pushed deeper than [`CACHE_LOW_WATER`] below the top have
    /// their pages `MADV_FREE`d — the hot top of the LIFO stays resident
    /// for the next creates.
    pub fn put(&self, stack: Stack) {
        self.put_batch(std::iter::once(stack));
    }

    /// Returns a batch of stacks under one lock hold; see [`Self::put`].
    pub fn put_batch(&self, stacks: impl IntoIterator<Item = Stack>) {
        let mut c = self.inner.lock().expect("stack cache poisoned");
        for stack in stacks {
            if stack.is_owned() && stack.usable() == DEFAULT_STACK_SIZE {
                c.free.push(stack);
            }
        }
        while c.free.len() > CACHE_LOW_WATER && c.advised < c.free.len() - CACHE_LOW_WATER {
            c.free[c.advised].advise_free();
            c.advised += 1;
        }
    }

    /// Pre-populates the cache with `n` stacks (used by benchmarks so the
    /// measured path never faults a fresh mapping).
    pub fn prime(&self, n: usize) -> Result<(), Errno> {
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(Stack::new(DEFAULT_STACK_SIZE)?);
        }
        self.inner
            .lock()
            .expect("stack cache poisoned")
            .free
            .extend(v);
        Ok(())
    }

    /// Number of stacks currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("stack cache poisoned").free.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_is_writable_to_its_limit() {
        let s = Stack::new(8 * 1024).expect("stack");
        assert!(s.usable() >= 8 * 1024);
        // SAFETY: Both ends of the usable region belong to the mapping.
        unsafe {
            s.top().sub(1).write(1);
            s.limit().write(2);
            assert_eq!(*s.top().sub(1), 1);
            assert_eq!(*s.limit(), 2);
        }
    }

    #[test]
    fn sizes_round_up_to_pages() {
        let s = Stack::new(1).expect("stack");
        assert_eq!(s.usable(), PAGE_SIZE);
    }

    #[test]
    fn cache_round_trips_default_stacks() {
        let cache = StackCache::new();
        assert!(cache.is_empty());
        let s = cache.take().expect("take");
        let top = s.top() as usize;
        cache.put(s);
        assert_eq!(cache.len(), 1);
        let s2 = cache.take().expect("take cached");
        assert_eq!(s2.top() as usize, top, "must reuse the cached mapping");
    }

    #[test]
    fn cache_discards_odd_sizes() {
        let cache = StackCache::new();
        cache.put(Stack::new(4 * 1024).expect("stack"));
        assert!(cache.is_empty());
    }

    #[test]
    fn prime_fills_cache() {
        let cache = StackCache::new();
        cache.prime(3).expect("prime");
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn borrowed_region_is_usable_and_never_freed() {
        let mut region = vec![0u8; 16 * 1024];
        let base = region.as_mut_ptr();
        {
            // SAFETY: `region` outlives the stack and is used by nothing
            // else while the stack exists.
            let s = unsafe { Stack::from_raw_parts(base, region.len()) };
            assert!(!s.is_owned());
            assert_eq!(s.usable(), region.len());
            assert_eq!(s.limit(), base);
            // SAFETY: In-bounds write to our own buffer via the stack view.
            unsafe { s.top().sub(1).write(9) };
        }
        // The Vec is still intact after the Stack dropped.
        assert_eq!(region[16 * 1024 - 1], 9);
    }

    #[test]
    fn cache_refuses_borrowed_stacks() {
        let mut region = vec![0u8; DEFAULT_STACK_SIZE];
        // SAFETY: As above; the stack is consumed by `put` within scope.
        let s = unsafe { Stack::from_raw_parts(region.as_mut_ptr(), region.len()) };
        let cache = StackCache::new();
        cache.put(s);
        assert!(cache.is_empty());
    }
}
