//! Condition variables.
//!
//! "Condition variables are used to wait until a particular condition is
//! true. Condition variables must be used in conjunction with a mutex lock.
//! This implements a typical monitor."

use core::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use core::time::Duration;

use crate::mutex::Mutex;
use crate::strategy;
use crate::types::SyncType;

/// Process-lifetime count of broadcasts that morphed waiters onto their
/// mutex. Always on (one `fetch_add` per broadcast, not per wakeup) so
/// the scheduler's `stats()` snapshot can report it without the stat or
/// trace layers enabled.
static REQUEUES: AtomicU64 = AtomicU64::new(0);

/// Total wait-morphing broadcasts since process start.
pub fn requeue_count() -> u64 {
    REQUEUES.load(Ordering::Relaxed)
}

/// A SunOS-style condition variable (`condvar_t`).
///
/// Position independent and valid when zeroed, like every variable in this
/// crate. The wakeup-sequence word monotonically counts signals; a waiter
/// sleeps only while the sequence still holds the value it sampled *before*
/// releasing the mutex, which closes the classic lost-wakeup window.
///
/// Waiters also record which mutex they are associated with so that
/// `cv_broadcast` can *morph* the herd: wake one waiter and transfer the
/// rest onto the mutex's wait queue, to be released one at a time as the
/// mutex frees instead of all stampeding it at once.
#[repr(C)]
#[derive(Debug, Default)]
pub struct Condvar {
    seq: AtomicU32,
    waiters: AtomicU32,
    kind: AtomicU32,
    /// Process id of the waiter that recorded `mutex_ptr` — the pointer is
    /// only meaningful in that process's address space, which matters for
    /// `SYNC_SHARED` variables mapped by several processes.
    mutex_pid: AtomicU32,
    /// Address of the [`Mutex`] the most recent waiter paired with this
    /// variable (zero until the first wait). Written before the waiter
    /// announces itself, so any broadcast that observes a waiter also
    /// observes a usable pointer.
    mutex_ptr: AtomicUsize,
}

impl Condvar {
    /// Creates a condition variable of the given variant.
    pub const fn new(kind: SyncType) -> Condvar {
        Condvar {
            seq: AtomicU32::new(0),
            waiters: AtomicU32::new(0),
            kind: AtomicU32::new(kind.0),
            mutex_pid: AtomicU32::new(0),
            mutex_ptr: AtomicUsize::new(0),
        }
    }

    /// `cv_init()`: (re)initializes the variable to the given variant.
    ///
    /// Must not be called while any thread waits on the variable.
    pub fn init(&self, kind: SyncType) {
        self.seq.store(0, Ordering::Release);
        self.waiters.store(0, Ordering::Release);
        self.kind.store(kind.0, Ordering::Release);
        self.mutex_pid.store(0, Ordering::Release);
        self.mutex_ptr.store(0, Ordering::Release);
    }

    /// Records the mutex a waiter is pairing with this variable.
    ///
    /// Called before the `waiters` increment: the increment is the release
    /// operation that publishes these plain stores to any broadcaster that
    /// sees the waiter.
    #[inline]
    fn record_mutex(&self, mutex: &Mutex) {
        self.mutex_ptr
            .store(mutex as *const Mutex as usize, Ordering::Relaxed);
        self.mutex_pid.store(std::process::id(), Ordering::Relaxed);
    }

    /// Resolves the recorded mutex to a morphing target, or `None` when the
    /// broadcast must fall back to waking everyone.
    fn morph_target(&self, shared: bool) -> Option<&AtomicU32> {
        let ptr = self.mutex_ptr.load(Ordering::Acquire);
        if ptr == 0 {
            return None;
        }
        if shared && self.mutex_pid.load(Ordering::Acquire) != std::process::id() {
            // The pointer names an address in another process; following it
            // here would be undefined behaviour. Shared variables are only
            // morphed by broadcasts from the recording process.
            return None;
        }
        // SAFETY: The pointer was recorded (in this address space) by a
        // waiter that will reacquire that mutex on wakeup, so under the
        // monitor discipline the mutex outlives every wait — and broadcasts
        // race only with live waits.
        let mutex = unsafe { &*(ptr as *const Mutex) };
        mutex.requeue_target(shared)
    }

    #[inline]
    fn shared(&self) -> bool {
        SyncType(self.kind.load(Ordering::Relaxed)).is_shared()
    }

    /// `cv_wait()`: blocks until the condition is signaled.
    ///
    /// "It releases the associated mutex before blocking, and reacquires it
    /// before returning. Since the reacquiring of the mutex may be blocked
    /// by other threads waiting for the mutex, the condition that caused the
    /// wait must be re-tested," i.e. call this in a `while` loop:
    ///
    /// ```
    /// use sunmt_sync::{Condvar, Mutex, SyncType};
    /// let m = Mutex::new(SyncType::DEFAULT);
    /// let cv = Condvar::new(SyncType::DEFAULT);
    /// let mut ready = true; // Toy predicate.
    /// m.enter();
    /// while !ready {
    ///     cv.wait(&m);
    /// }
    /// m.exit();
    /// ```
    pub fn wait(&self, mutex: &Mutex) {
        self.record_mutex(mutex);
        // Announce before sampling the sequence: a signaler that misses
        // this increment necessarily bumped `seq` first, so our park
        // returns immediately on the value mismatch (no lost wakeup).
        self.waiters.fetch_add(1, Ordering::SeqCst);
        let seen = self.seq.load(Ordering::SeqCst);
        mutex.exit();
        // Sleeps only if no signal has arrived since `seen` was sampled
        // under the mutex; spurious wakeups are fine because the caller
        // re-tests its predicate.
        sunmt_trace::probe!(sunmt_trace::Tag::CvBlock, &self.seq as *const _ as usize);
        strategy::park(&self.seq, seen, self.shared());
        self.waiters.fetch_sub(1, Ordering::SeqCst);
        // `enter_cv`, not `enter`: a broadcast may have morphed siblings
        // onto the mutex, and only a contended-style acquire keeps the
        // release-one-wake-next chain going.
        mutex.enter_cv();
    }

    /// `cv_timedwait()`: like [`Self::wait`], but gives up after `timeout`.
    ///
    /// Returns `true` if the variable was signaled and `false` on timeout.
    /// Either way the mutex is reacquired before returning, and (as with
    /// `cv_wait`) the caller must re-test its predicate: a `true` return
    /// means a signal arrived, not that this thread's condition holds.
    pub fn timed_wait(&self, mutex: &Mutex, timeout: Duration) -> bool {
        let deadline = sunmt_sys::time::monotonic_now() + timeout;
        self.record_mutex(mutex);
        self.waiters.fetch_add(1, Ordering::SeqCst);
        let seen = self.seq.load(Ordering::SeqCst);
        mutex.exit();
        sunmt_trace::probe!(sunmt_trace::Tag::CvBlock, &self.seq as *const _ as usize);
        // The park carries no verdict (it may return spuriously), so the
        // deadline is re-derived from the clock each round. The `seq`
        // check comes first: a waiter that was broadcast-morphed onto the
        // mutex and then timed out *there* was still signaled — reporting
        // a timeout after consuming the wakeup would strand a sibling.
        let signaled = loop {
            if self.seq.load(Ordering::SeqCst) != seen {
                break true;
            }
            let now = sunmt_sys::time::monotonic_now();
            if now >= deadline {
                break false;
            }
            strategy::park_timeout(&self.seq, seen, self.shared(), deadline - now);
        };
        self.waiters.fetch_sub(1, Ordering::SeqCst);
        mutex.enter_cv();
        signaled
    }

    /// `cv_signal()`: wakes one of the threads blocked in [`Self::wait`].
    ///
    /// "There is no guaranteed order of acquisition if more than one thread
    /// blocks on the condition variable."
    pub fn signal(&self) {
        self.seq.fetch_add(1, Ordering::SeqCst);
        if self.waiters.load(Ordering::SeqCst) > 0 {
            sunmt_stat::stat_count!(sunmt_stat::Ctr::CvSignal);
            strategy::unpark(&self.seq, 1, self.shared());
        }
    }

    /// `cv_broadcast()`: wakes all threads blocked in [`Self::wait`].
    ///
    /// "Since `cv_broadcast()` causes all threads blocking on the condition
    /// to re-contend for the mutex, it should be used with care." This
    /// implementation takes the care itself: when the associated mutex is
    /// held, one waiter is woken and the rest are *requeued* onto the
    /// mutex's wait queue (wait morphing), so each is released exactly as
    /// the previous one exits instead of all stampeding the lock at once.
    pub fn broadcast(&self) {
        let new = self.seq.fetch_add(1, Ordering::SeqCst).wrapping_add(1);
        if self.waiters.load(Ordering::SeqCst) == 0 {
            return;
        }
        let shared = self.shared();
        match self.morph_target(shared) {
            Some(target) => {
                REQUEUES.fetch_add(1, Ordering::Relaxed);
                sunmt_stat::stat_count!(sunmt_stat::Ctr::CvMorph);
                sunmt_trace::probe!(
                    sunmt_trace::Tag::CvRequeue,
                    &self.seq as *const _ as usize,
                    target.as_ptr() as usize
                );
                strategy::unpark_requeue(&self.seq, new, target, shared);
            }
            None => {
                sunmt_stat::stat_count!(sunmt_stat::Ctr::CvWakeAll);
                strategy::unpark(&self.seq, u32::MAX, shared);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn zeroed_condvar_is_usable() {
        let zeroed = [0u8; core::mem::size_of::<Condvar>()];
        // SAFETY: All-zero is the documented valid default state.
        let cv: &Condvar = unsafe { &*(zeroed.as_ptr() as *const Condvar) };
        cv.signal();
        cv.broadcast();
    }

    struct Monitor {
        m: Mutex,
        cv: Condvar,
        ready: AtomicUsize,
    }

    #[test]
    fn signal_wakes_one_waiter() {
        let mon = Arc::new(Monitor {
            m: Mutex::new(SyncType::DEFAULT),
            cv: Condvar::new(SyncType::DEFAULT),
            ready: AtomicUsize::new(0),
        });
        let mon2 = Arc::clone(&mon);
        let waiter = std::thread::spawn(move || {
            mon2.m.enter();
            while mon2.ready.load(Ordering::Relaxed) == 0 {
                mon2.cv.wait(&mon2.m);
            }
            mon2.m.exit();
        });
        std::thread::sleep(Duration::from_millis(10));
        mon.m.enter();
        mon.ready.store(1, Ordering::Relaxed);
        mon.cv.signal();
        mon.m.exit();
        waiter.join().unwrap();
    }

    #[test]
    fn broadcast_wakes_all_waiters() {
        const WAITERS: usize = 6;
        let mon = Arc::new(Monitor {
            m: Mutex::new(SyncType::DEFAULT),
            cv: Condvar::new(SyncType::DEFAULT),
            ready: AtomicUsize::new(0),
        });
        let mut handles = Vec::new();
        for _ in 0..WAITERS {
            let mon = Arc::clone(&mon);
            handles.push(std::thread::spawn(move || {
                mon.m.enter();
                while mon.ready.load(Ordering::Relaxed) == 0 {
                    mon.cv.wait(&mon.m);
                }
                mon.m.exit();
            }));
        }
        std::thread::sleep(Duration::from_millis(20));
        mon.m.enter();
        mon.ready.store(1, Ordering::Relaxed);
        mon.cv.broadcast();
        mon.m.exit();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn timed_wait_times_out_with_mutex_reacquired() {
        let m = Mutex::new(SyncType::DEFAULT);
        let cv = Condvar::new(SyncType::DEFAULT);
        m.enter();
        let t0 = sunmt_sys::time::monotonic_now();
        let signaled = cv.timed_wait(&m, Duration::from_millis(30));
        let waited = sunmt_sys::time::monotonic_now() - t0;
        assert!(!signaled);
        assert!(
            waited >= Duration::from_millis(25),
            "returned after {waited:?}"
        );
        // The mutex must be held again on return.
        m.exit();
    }

    #[test]
    fn timed_wait_returns_true_on_signal() {
        let mon = Arc::new(Monitor {
            m: Mutex::new(SyncType::DEFAULT),
            cv: Condvar::new(SyncType::DEFAULT),
            ready: AtomicUsize::new(0),
        });
        let mon2 = Arc::clone(&mon);
        let signaler = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            mon2.m.enter();
            mon2.ready.store(1, Ordering::Relaxed);
            mon2.cv.signal();
            mon2.m.exit();
        });
        mon.m.enter();
        let mut signaled = true;
        while mon.ready.load(Ordering::Relaxed) == 0 && signaled {
            signaled = mon.cv.timed_wait(&mon.m, Duration::from_secs(10));
        }
        mon.m.exit();
        assert!(signaled);
        signaler.join().unwrap();
    }

    #[test]
    fn signal_before_wait_is_not_lost_when_predicate_set() {
        // A signal with no waiter is absorbed by the predicate, exactly as
        // in the paper's monitor pattern.
        let mon = Monitor {
            m: Mutex::new(SyncType::DEFAULT),
            cv: Condvar::new(SyncType::DEFAULT),
            ready: AtomicUsize::new(0),
        };
        mon.m.enter();
        mon.ready.store(1, Ordering::Relaxed);
        mon.cv.signal();
        // A waiter arriving later re-tests the predicate and never sleeps.
        while mon.ready.load(Ordering::Relaxed) == 0 {
            mon.cv.wait(&mon.m);
        }
        mon.m.exit();
    }
}
