//! Implementation-variant selection (the `type` argument of the paper's
//! `*_init` functions).

/// Variant bits accepted when initializing a synchronization variable.
///
/// "The programmer may choose the particular implementation variant of the
/// synchronization semantic at the time the variable is initialized. If the
/// variable is initialized to zero, a default implementation is used."
///
/// Bits compose with bitwise-or, e.g. `SyncType::SPIN | SyncType::SHARED`
/// ("The programmer may bitwise-or `THREAD_SYNC_SHARED` into the variant
/// type").
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SyncType(pub u32);

impl SyncType {
    /// The default variant: sleep on contention (value zero, so zeroed
    /// memory selects it).
    pub const DEFAULT: SyncType = SyncType(0);
    /// `THREAD_SYNC_SHARED`: the variable may live in memory shared between
    /// processes; all blocking goes through the kernel.
    pub const SHARED: SyncType = SyncType(0x1);
    /// Busy-wait instead of sleeping (the paper's "spin locks").
    pub const SPIN: SyncType = SyncType(0x2);
    /// Spin briefly, then sleep (the paper's "adaptive locks").
    pub const ADAPTIVE: SyncType = SyncType(0x4);
    /// The paper's "extra debugging" variant: ownership is tracked and
    /// misuse (releasing an unheld lock, recursive entry by the owner)
    /// panics instead of corrupting state. Costs one extra word of traffic
    /// per operation; not usable across processes.
    pub const DEBUG: SyncType = SyncType(0x8);
    /// Ticket lock: FIFO-fair spin (mutexes only). Next/now-serving
    /// tickets are packed into the one lock word, so the variant stays
    /// position independent and — unlike the queue variants — works across
    /// processes when `SHARED` is or'd in.
    pub const TICKET: SyncType = SyncType(0x10);
    /// MCS queue lock (mutexes only): each waiter spins (then parks) on
    /// its *own* cache line, handed off FIFO by its predecessor. Queue
    /// nodes hold process-local addresses, so `MCS | SHARED` degrades to
    /// the [`Self::HYBRID`] protocol (see the mutex module docs).
    pub const MCS: SyncType = SyncType(0x20);
    /// Futex-hybrid queue lock (mutexes only): ticket FIFO order with a
    /// bounded spin, then park in the blocking strategy (user sleep queue
    /// for unbound threads, kernel futex for LWPs and `SHARED`).
    pub const HYBRID: SyncType = SyncType(0x40);

    /// Whether the `SHARED` bit is set.
    #[inline]
    pub fn is_shared(self) -> bool {
        self.0 & Self::SHARED.0 != 0
    }

    /// Whether the `SPIN` bit is set.
    #[inline]
    pub fn is_spin(self) -> bool {
        self.0 & Self::SPIN.0 != 0
    }

    /// Whether the `ADAPTIVE` bit is set.
    #[inline]
    pub fn is_adaptive(self) -> bool {
        self.0 & Self::ADAPTIVE.0 != 0
    }

    /// Whether the `DEBUG` bit is set.
    #[inline]
    pub fn is_debug(self) -> bool {
        self.0 & Self::DEBUG.0 != 0
    }

    /// Whether the `TICKET` bit is set.
    #[inline]
    pub fn is_ticket(self) -> bool {
        self.0 & Self::TICKET.0 != 0
    }

    /// Whether the `MCS` bit is set.
    #[inline]
    pub fn is_mcs(self) -> bool {
        self.0 & Self::MCS.0 != 0
    }

    /// Whether the `HYBRID` bit is set.
    #[inline]
    pub fn is_hybrid(self) -> bool {
        self.0 & Self::HYBRID.0 != 0
    }

    /// Whether any of the queue-lock bits (`TICKET`, `MCS`, `HYBRID`) is
    /// set — these share the FIFO word protocol and are mutex-only.
    #[inline]
    pub fn is_queue(self) -> bool {
        self.0 & (Self::TICKET.0 | Self::MCS.0 | Self::HYBRID.0) != 0
    }
}

impl core::ops::BitOr for SyncType {
    type Output = SyncType;
    fn bitor(self, rhs: SyncType) -> SyncType {
        SyncType(self.0 | rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_default() {
        let t = SyncType::default();
        assert_eq!(t, SyncType::DEFAULT);
        assert!(!t.is_shared() && !t.is_spin() && !t.is_adaptive());
    }

    #[test]
    fn bits_compose() {
        let t = SyncType::SPIN | SyncType::SHARED;
        assert!(t.is_shared());
        assert!(t.is_spin());
        assert!(!t.is_adaptive());
    }

    #[test]
    fn queue_bits_compose() {
        assert!(SyncType::TICKET.is_ticket() && SyncType::TICKET.is_queue());
        assert!(SyncType::MCS.is_mcs() && SyncType::MCS.is_queue());
        assert!(SyncType::HYBRID.is_hybrid() && SyncType::HYBRID.is_queue());
        let t = SyncType::TICKET | SyncType::SHARED;
        assert!(t.is_queue() && t.is_shared());
        assert!(!SyncType::DEFAULT.is_queue() && !SyncType::ADAPTIVE.is_queue());
    }
}
