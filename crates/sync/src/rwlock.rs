//! Multiple-readers, single-writer locks.
//!
//! "Multiple readers, single writer locks allow many threads simultaneous
//! read-only access to an object ... It allows only one thread to access an
//! object for writing at any one time, and excludes any readers. A good
//! candidate ... is an object that is searched more frequently than it is
//! changed."

use core::sync::atomic::{AtomicU32, Ordering};

use crate::strategy;
use crate::types::SyncType;

/// Whether `rw_enter` acquires for reading or writing.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RwType {
    /// `RW_READER`: "Acquire a readers lock."
    Reader,
    /// `RW_WRITER`: "Acquire a writer lock."
    Writer,
}

const WRITER: u32 = 1 << 31;
const UPGRADE: u32 = 1 << 30;
const COUNT_MASK: u32 = UPGRADE - 1;

/// A SunOS-style readers/writer lock (`rwlock_t`).
///
/// Zeroed memory is a valid, unheld lock in the default variant. Waiting
/// writers take priority over new readers, which both prevents writer
/// starvation and yields the paper's `rw_downgrade` semantics ("Any waiting
/// writers remain waiting. If there are no waiting writers it wakes up any
/// pending readers") directly.
#[repr(C)]
#[derive(Debug, Default)]
pub struct RwLock {
    /// Bit 31: writer held. Bit 30: an upgrade is in progress. Low bits:
    /// reader count (the upgrader's own hold included).
    state: AtomicU32,
    /// Number of writers blocked in `enter(Writer)`.
    wrwait: AtomicU32,
    /// Number of readers blocked in `enter(Reader)`.
    rdwait: AtomicU32,
    /// Wake sequence readers park on.
    rdseq: AtomicU32,
    /// Wake sequence writers and upgraders park on.
    wrseq: AtomicU32,
    kind: AtomicU32,
}

impl RwLock {
    /// Creates an unheld lock of the given variant.
    pub const fn new(kind: SyncType) -> RwLock {
        RwLock {
            state: AtomicU32::new(0),
            wrwait: AtomicU32::new(0),
            rdwait: AtomicU32::new(0),
            rdseq: AtomicU32::new(0),
            wrseq: AtomicU32::new(0),
            kind: AtomicU32::new(kind.0),
        }
    }

    /// `rw_init()`: (re)initializes the variable to the given variant.
    ///
    /// Must not be called while the lock is held or waited on.
    pub fn init(&self, kind: SyncType) {
        self.state.store(0, Ordering::Release);
        self.wrwait.store(0, Ordering::Release);
        self.rdwait.store(0, Ordering::Release);
        self.rdseq.store(0, Ordering::Release);
        self.wrseq.store(0, Ordering::Release);
        self.kind.store(kind.0, Ordering::Release);
    }

    #[inline]
    fn shared(&self) -> bool {
        SyncType(self.kind.load(Ordering::Relaxed)).is_shared()
    }

    /// Stat identity: the state word's address (what RwBlock traces too).
    #[inline]
    fn site(&self) -> usize {
        &self.state as *const _ as usize
    }

    #[inline]
    fn reader_may_enter(&self, s: u32) -> bool {
        s & (WRITER | UPGRADE) == 0 && self.wrwait.load(Ordering::Relaxed) == 0
    }

    /// `rw_enter()`: acquires a readers or writer lock, blocking as needed.
    pub fn enter(&self, t: RwType) {
        match t {
            RwType::Reader => self.enter_reader(),
            RwType::Writer => self.enter_writer(),
        }
    }

    fn enter_reader(&self) {
        let mut t0 = 0u64;
        loop {
            let s = self.state.load(Ordering::Relaxed);
            if self.reader_may_enter(s) {
                if self
                    .state
                    .compare_exchange_weak(s, s + 1, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
                {
                    sunmt_stat::lock::block_end(self.site(), t0);
                    return;
                }
                continue;
            }
            // Sample the wake sequence, then re-check: a release between the
            // check above and the park bumps `rdseq`, so the park returns
            // immediately on value mismatch instead of sleeping forever.
            self.rdwait.fetch_add(1, Ordering::SeqCst);
            let seq = self.rdseq.load(Ordering::SeqCst);
            if self.reader_may_enter(self.state.load(Ordering::Relaxed)) {
                self.rdwait.fetch_sub(1, Ordering::SeqCst);
                continue;
            }
            sunmt_trace::probe!(
                sunmt_trace::Tag::RwBlock,
                &self.state as *const _ as usize,
                0u64 // reader
            );
            if sunmt_stat::enabled() {
                if t0 == 0 {
                    t0 = sunmt_stat::lock::slow_begin(self.site());
                }
                sunmt_stat::lock::parked(self.site());
            }
            strategy::park(&self.rdseq, seq, self.shared());
            self.rdwait.fetch_sub(1, Ordering::SeqCst);
        }
    }

    fn enter_writer(&self) {
        self.wrwait.fetch_add(1, Ordering::Relaxed);
        let mut t0 = 0u64;
        loop {
            if self
                .state
                .compare_exchange(0, WRITER, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                self.wrwait.fetch_sub(1, Ordering::Relaxed);
                sunmt_stat::lock::block_end(self.site(), t0);
                return;
            }
            let seq = self.wrseq.load(Ordering::Acquire);
            if self.state.load(Ordering::Relaxed) == 0 {
                continue;
            }
            sunmt_trace::probe!(
                sunmt_trace::Tag::RwBlock,
                &self.state as *const _ as usize,
                1u64 // writer
            );
            if sunmt_stat::enabled() {
                if t0 == 0 {
                    t0 = sunmt_stat::lock::slow_begin(self.site());
                }
                sunmt_stat::lock::parked(self.site());
            }
            strategy::park(&self.wrseq, seq, self.shared());
        }
    }

    /// `rw_tryenter()`: acquires the lock "if doing so would not require
    /// blocking"; returns whether it was acquired.
    pub fn try_enter(&self, t: RwType) -> bool {
        match t {
            RwType::Reader => loop {
                let s = self.state.load(Ordering::Relaxed);
                if !self.reader_may_enter(s) {
                    return false;
                }
                if self
                    .state
                    .compare_exchange_weak(s, s + 1, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
                {
                    return true;
                }
            },
            RwType::Writer => self
                .state
                .compare_exchange(0, WRITER, Ordering::Acquire, Ordering::Relaxed)
                .is_ok(),
        }
    }

    /// `rw_exit()`: releases a readers or writer lock.
    pub fn exit(&self) {
        let shared = self.shared();
        let s = self.state.load(Ordering::Relaxed);
        if s & WRITER != 0 {
            debug_assert_eq!(s, WRITER, "writer hold must exclude all readers");
            self.state.store(0, Ordering::Release);
            self.wake_after_release(shared);
        } else {
            debug_assert_ne!(s & COUNT_MASK, 0, "rw_exit with no readers");
            let prev = self.state.fetch_sub(1, Ordering::Release);
            let remaining = prev - 1;
            if remaining & COUNT_MASK == 0 {
                // Last reader gone; writers (if any) can now enter.
                if self.wrwait.load(Ordering::Relaxed) > 0 {
                    self.wrseq.fetch_add(1, Ordering::Release);
                    strategy::unpark(&self.wrseq, 1, shared);
                }
            } else if remaining == UPGRADE | 1 {
                // Only the upgrader's own hold remains: let it convert. Any
                // ordinary waiting writers woken alongside re-check and
                // park again.
                self.wrseq.fetch_add(1, Ordering::Release);
                strategy::unpark(&self.wrseq, u32::MAX, shared);
            }
        }
    }

    fn wake_after_release(&self, shared: bool) {
        if self.wrwait.load(Ordering::Relaxed) > 0 {
            self.wrseq.fetch_add(1, Ordering::Release);
            strategy::unpark(&self.wrseq, 1, shared);
        } else {
            self.rdseq.fetch_add(1, Ordering::SeqCst);
            if self.rdwait.load(Ordering::SeqCst) > 0 {
                strategy::unpark(&self.rdseq, u32::MAX, shared);
            }
        }
    }

    /// `rw_downgrade()`: atomically converts the caller's writer lock into a
    /// reader lock.
    ///
    /// "Any waiting writers remain waiting. If there are no waiting writers
    /// it wakes up any pending readers."
    pub fn downgrade(&self) {
        let prev = self.state.swap(1, Ordering::Release);
        debug_assert_eq!(prev, WRITER, "rw_downgrade without the writer lock");
        if self.wrwait.load(Ordering::Relaxed) == 0 {
            self.rdseq.fetch_add(1, Ordering::SeqCst);
            if self.rdwait.load(Ordering::SeqCst) > 0 {
                strategy::unpark(&self.rdseq, u32::MAX, self.shared());
            }
        }
    }

    /// `rw_tryupgrade()`: attempts to atomically convert the caller's reader
    /// lock into a writer lock.
    ///
    /// "If there is another `rw_tryupgrade()` in progress or there are any
    /// writers waiting, it returns a failure indication" — in which case the
    /// caller still holds its reader lock. On success the caller holds the
    /// writer lock. The call may wait for the *other* readers to drain; it
    /// never waits behind a writer (that is exactly the failure case).
    pub fn try_upgrade(&self) -> bool {
        if self.wrwait.load(Ordering::Relaxed) > 0 {
            return false;
        }
        // Claim the single upgrade slot.
        loop {
            let s = self.state.load(Ordering::Relaxed);
            debug_assert_eq!(s & WRITER, 0, "rw_tryupgrade without a reader lock");
            debug_assert_ne!(s & COUNT_MASK, 0, "rw_tryupgrade without a reader lock");
            if s & UPGRADE != 0 {
                return false;
            }
            if self
                .state
                .compare_exchange_weak(s, s | UPGRADE, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                break;
            }
        }
        // Wait for the other readers to leave, then convert our remaining
        // hold into the writer lock.
        let mut t0 = 0u64;
        loop {
            if self
                .state
                .compare_exchange(UPGRADE | 1, WRITER, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                sunmt_stat::lock::block_end(self.site(), t0);
                return true;
            }
            let seq = self.wrseq.load(Ordering::Acquire);
            if self.state.load(Ordering::Relaxed) == UPGRADE | 1 {
                continue;
            }
            sunmt_trace::probe!(
                sunmt_trace::Tag::RwBlock,
                &self.state as *const _ as usize,
                1u64 // writer
            );
            if sunmt_stat::enabled() {
                if t0 == 0 {
                    t0 = sunmt_stat::lock::slow_begin(self.site());
                }
                sunmt_stat::lock::parked(self.site());
            }
            strategy::park(&self.wrseq, seq, self.shared());
        }
    }

    /// Racy snapshot of (writer held, reader count) for tests/diagnostics.
    pub fn holders(&self) -> (bool, u32) {
        let s = self.state.load(Ordering::Relaxed);
        (s & WRITER != 0, s & COUNT_MASK)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn zeroed_rwlock_is_unheld() {
        let zeroed = [0u8; core::mem::size_of::<RwLock>()];
        // SAFETY: All-zero is the documented valid default state.
        let l: &RwLock = unsafe { &*(zeroed.as_ptr() as *const RwLock) };
        assert_eq!(l.holders(), (false, 0));
        assert!(l.try_enter(RwType::Writer));
        l.exit();
    }

    #[test]
    fn many_readers_share() {
        let l = RwLock::new(SyncType::DEFAULT);
        l.enter(RwType::Reader);
        l.enter(RwType::Reader);
        l.enter(RwType::Reader);
        assert_eq!(l.holders(), (false, 3));
        assert!(!l.try_enter(RwType::Writer));
        l.exit();
        l.exit();
        l.exit();
        assert_eq!(l.holders(), (false, 0));
    }

    #[test]
    fn writer_excludes_readers() {
        let l = RwLock::new(SyncType::DEFAULT);
        l.enter(RwType::Writer);
        assert!(!l.try_enter(RwType::Reader));
        assert!(!l.try_enter(RwType::Writer));
        l.exit();
        assert!(l.try_enter(RwType::Reader));
        l.exit();
    }

    #[test]
    fn downgrade_keeps_exclusion_until_release() {
        let l = RwLock::new(SyncType::DEFAULT);
        l.enter(RwType::Writer);
        l.downgrade();
        assert_eq!(l.holders(), (false, 1));
        // Readers may now join; writers may not.
        assert!(l.try_enter(RwType::Reader));
        assert!(!l.try_enter(RwType::Writer));
        l.exit();
        l.exit();
    }

    #[test]
    fn try_upgrade_sole_reader_succeeds() {
        let l = RwLock::new(SyncType::DEFAULT);
        l.enter(RwType::Reader);
        assert!(l.try_upgrade());
        assert_eq!(l.holders(), (true, 0));
        l.exit();
    }

    #[test]
    fn concurrent_upgrades_one_wins() {
        let l = Arc::new(RwLock::new(SyncType::DEFAULT));
        l.enter(RwType::Reader);
        let l2 = Arc::clone(&l);
        let other = std::thread::spawn(move || {
            l2.enter(RwType::Reader);
            let won = l2.try_upgrade();
            if won {
                l2.exit(); // Release writer hold.
            } else {
                l2.exit(); // Release reader hold.
            }
            won
        });
        std::thread::sleep(Duration::from_millis(5));
        let mine = l.try_upgrade();
        l.exit();
        let theirs = other.join().unwrap();
        assert!(
            mine ^ theirs || !(mine && theirs),
            "two upgrades must not both succeed (mine={mine}, theirs={theirs})"
        );
        assert!(!(mine && theirs));
        assert_eq!(l.holders(), (false, 0));
    }

    #[test]
    fn readers_and_writers_exclude_under_load() {
        const LWPS: usize = 4;
        const ITERS: usize = 2_000;
        let l = Arc::new(RwLock::new(SyncType::DEFAULT));
        let readers_in = Arc::new(AtomicU32::new(0));
        let writer_in = Arc::new(AtomicU32::new(0));
        let mut handles = Vec::new();
        for i in 0..LWPS {
            let l = Arc::clone(&l);
            let readers_in = Arc::clone(&readers_in);
            let writer_in = Arc::clone(&writer_in);
            handles.push(std::thread::spawn(move || {
                for n in 0..ITERS {
                    if (n + i) % 4 == 0 {
                        l.enter(RwType::Writer);
                        assert_eq!(writer_in.fetch_add(1, Ordering::SeqCst), 0);
                        assert_eq!(readers_in.load(Ordering::SeqCst), 0);
                        writer_in.fetch_sub(1, Ordering::SeqCst);
                        l.exit();
                    } else {
                        l.enter(RwType::Reader);
                        readers_in.fetch_add(1, Ordering::SeqCst);
                        assert_eq!(writer_in.load(Ordering::SeqCst), 0);
                        readers_in.fetch_sub(1, Ordering::SeqCst);
                        l.exit();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(l.holders(), (false, 0));
    }

    #[test]
    fn waiting_writer_blocks_new_readers() {
        let l = Arc::new(RwLock::new(SyncType::DEFAULT));
        l.enter(RwType::Reader);
        let l2 = Arc::clone(&l);
        let writer = std::thread::spawn(move || {
            l2.enter(RwType::Writer);
            l2.exit();
        });
        // Give the writer time to queue up.
        std::thread::sleep(Duration::from_millis(20));
        assert!(
            !l.try_enter(RwType::Reader),
            "new readers must queue behind a waiting writer"
        );
        l.exit();
        writer.join().unwrap();
    }
}
