//! The synchronization half of the paper's Figure 4, under its original
//! names.
//!
//! Rust callers will normally use the methods on [`Mutex`], [`Condvar`],
//! [`Sema`] and [`RwLock`]; this module exists so code can be transliterated
//! from the paper (and from SunOS 5.x sources) line by line, and so the
//! API-conformance test can tick off every Figure 4 entry.

use crate::{Condvar, Mutex, RwLock, RwType, Sema, SyncType};

/// `mutex_init(mp, type, arg)`.
pub fn mutex_init(mp: &Mutex, kind: SyncType) {
    mp.init(kind);
}

/// `mutex_enter(mp)`.
pub fn mutex_enter(mp: &Mutex) {
    mp.enter();
}

/// `mutex_exit(mp)`.
pub fn mutex_exit(mp: &Mutex) {
    mp.exit();
}

/// `mutex_tryenter(mp)`.
pub fn mutex_tryenter(mp: &Mutex) -> bool {
    mp.try_enter()
}

/// `mutex_destroy(mp)`.
pub fn mutex_destroy(mp: &Mutex) {
    mp.destroy();
}

/// `cv_init(cvp, type, arg)`.
pub fn cv_init(cvp: &Condvar, kind: SyncType) {
    cvp.init(kind);
}

/// `cv_wait(cvp, mutexp)`.
pub fn cv_wait(cvp: &Condvar, mutexp: &Mutex) {
    cvp.wait(mutexp);
}

/// `cv_timedwait(cvp, mutexp, timeout)`.
///
/// Returns `true` if signaled, `false` on timeout (the paper's C version
/// returns -1 with `errno == ETIME`). The mutex is reacquired either way.
pub fn cv_timedwait(cvp: &Condvar, mutexp: &Mutex, timeout: core::time::Duration) -> bool {
    cvp.timed_wait(mutexp, timeout)
}

/// `cv_signal(cvp)`.
pub fn cv_signal(cvp: &Condvar) {
    cvp.signal();
}

/// `cv_broadcast(cvp)`.
pub fn cv_broadcast(cvp: &Condvar) {
    cvp.broadcast();
}

/// `sema_init(sp, count, type, arg)`.
pub fn sema_init(sp: &Sema, count: u32, kind: SyncType) {
    sp.init(count, kind);
}

/// `sema_p(sp)`.
pub fn sema_p(sp: &Sema) {
    sp.p();
}

/// `sema_timedp(sp, timeout)`.
///
/// Returns whether the decrement happened before the timeout.
pub fn sema_timedp(sp: &Sema, timeout: core::time::Duration) -> bool {
    sp.timed_p(timeout)
}

/// `sema_v(sp)`.
pub fn sema_v(sp: &Sema) {
    sp.v();
}

/// `sema_tryp(sp)`.
pub fn sema_tryp(sp: &Sema) -> bool {
    sp.try_p()
}

/// `rw_init(rwlp, type, arg)`.
pub fn rw_init(rwlp: &RwLock, kind: SyncType) {
    rwlp.init(kind);
}

/// `rw_enter(rwlp, type)`.
pub fn rw_enter(rwlp: &RwLock, t: RwType) {
    rwlp.enter(t);
}

/// `rw_exit(rwlp)`.
pub fn rw_exit(rwlp: &RwLock) {
    rwlp.exit();
}

/// `rw_tryenter(rwlp, type)`.
pub fn rw_tryenter(rwlp: &RwLock, t: RwType) -> bool {
    rwlp.try_enter(t)
}

/// `rw_downgrade(rwlp)`.
pub fn rw_downgrade(rwlp: &RwLock) {
    rwlp.downgrade();
}

/// `rw_tryupgrade(rwlp)`.
pub fn rw_tryupgrade(rwlp: &RwLock) -> bool {
    rwlp.try_upgrade()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_monitor_idiom_compiles_and_runs() {
        // The literal usage sketch from the paper's condition-variable
        // section, transliterated.
        let m = Mutex::new(SyncType::DEFAULT);
        let cv = Condvar::new(SyncType::DEFAULT);
        let some_condition = std::sync::atomic::AtomicBool::new(false);
        mutex_enter(&m);
        while some_condition.load(std::sync::atomic::Ordering::Relaxed) {
            cv_wait(&cv, &m);
        }
        some_condition.store(true, std::sync::atomic::Ordering::Relaxed);
        mutex_exit(&m);
        assert!(some_condition.load(std::sync::atomic::Ordering::Relaxed));
        cv_signal(&cv);
        cv_broadcast(&cv);
    }
}
