//! SunOS-style synchronization variables.
//!
//! The paper defines four synchronization types — mutual-exclusion locks,
//! condition variables, counting semaphores, and multiple-readers /
//! single-writer locks — with these architectural properties, all of which
//! this crate reproduces:
//!
//! * **Zero means ready.** "Any synchronization variable that is statically
//!   or dynamically allocated as zero may be used immediately without
//!   further initialization, and provides the default implementation variant
//!   in the default initial state." Every type here is `repr(C)`, contains
//!   only atomics, and treats the all-zero bit pattern as
//!   unlocked/empty/default.
//! * **Implementation variants.** The programmer picks a variant at
//!   initialization: default (sleep), spin, or adaptive locks, and the
//!   [`SyncType::SHARED`] bit (`THREAD_SYNC_SHARED` in the paper) for
//!   variables shared between processes.
//! * **Position independence.** Variables carry no process-local pointers,
//!   so they "may be shared between processes even though they are mapped at
//!   different virtual addresses".
//! * **Two-level blocking.** Blocking goes through a process-global
//!   [`strategy::BlockStrategy`]. The default strategy blocks the calling
//!   LWP in the kernel (futex). The threads library installs a strategy that
//!   puts an unbound thread to sleep entirely in user space — "switching
//!   from one thread to another occurs without the kernel knowing it" — and
//!   falls back to the kernel for bound threads and shared variables, where
//!   "the thread is temporarily bound to the LWP that is blocked by the
//!   kernel".
//!
//! The [`api`] module exposes the exact function names of the paper's
//! Figure 4 (`mutex_enter`, `cv_wait`, `sema_p`, `rw_tryupgrade`, ...).

#![deny(missing_docs)]

pub mod api;
pub mod condvar;
pub mod mutex;
pub mod rwlock;
pub mod sema;
pub mod strategy;
mod types;

pub use condvar::Condvar;
pub use mutex::Mutex;
pub use rwlock::{RwLock, RwType};
pub use sema::Sema;
pub use types::SyncType;
