//! Pluggable blocking: how a contended synchronization variable suspends the
//! caller.
//!
//! The same `mutex_enter` call must (per the paper) block a *user-level
//! thread* without kernel involvement when called from an unbound thread,
//! and block the *LWP in the kernel* when called from a bound thread, from
//! plain LWP code, or on a process-shared variable. This module is that
//! dispatch point: sync variables park through the process-global
//! [`BlockStrategy`], which the threads library replaces at startup.
//!
//! The contract is futex-shaped, which both backends implement naturally:
//! `park(word, expected)` sleeps only while `*word == expected`, and
//! `unpark(word, n)` releases up to `n` sleepers.
//!
//! Sync variables are not the only clients: `sunmt-chan` parks its
//! channel waiters, select waiters, and async `Waker`s on private
//! eventcount words through the same entry points, so every message
//! wait inherits the two-level blocking split (and the scheduler's
//! futex-elision on user-level wakes) without that crate knowing which
//! backend is installed.

use core::sync::atomic::AtomicU32;
use core::time::Duration;
use std::sync::OnceLock;

use sunmt_sys::futex::{self, Scope};
use sunmt_sys::task;

/// A blocking backend for synchronization variables.
pub trait BlockStrategy: Sync {
    /// Suspends the calling context until a matching [`Self::unpark`], if
    /// `word` still holds `expected` at sleep time. Spurious returns are
    /// allowed; callers always re-check their predicate.
    ///
    /// `shared` is true for `SYNC_SHARED` variables: those must always park
    /// in the kernel so that waiters in *other processes* can be woken.
    fn park(&self, word: &AtomicU32, expected: u32, shared: bool);

    /// Like [`Self::park`], but returns (spuriously or otherwise) no later
    /// than `timeout` from now. Used by the timed primitives
    /// (`cv_timedwait`, `sema_timedp`, I/O deadlines); callers re-check
    /// both their predicate and their deadline, so the return carries no
    /// "timed out" verdict.
    ///
    /// The default is the kernel path — a futex wait with a timeout — which
    /// is correct for any backend whose `park` is a kernel block. The
    /// threads library overrides it to put unbound threads on the
    /// user-level sleep queue with a deadline instead.
    fn park_timeout(&self, word: &AtomicU32, expected: u32, shared: bool, timeout: Duration) {
        let scope = if shared {
            Scope::Shared
        } else {
            Scope::Private
        };
        // Mismatch, wake, and timeout all mean "re-check".
        let _ = futex::wait_timeout(word, expected, scope, timeout);
    }

    /// Wakes up to `n` contexts parked on `word`.
    fn unpark(&self, word: &AtomicU32, n: u32, shared: bool);

    /// Wait morphing: wakes **one** context parked on `word` and transfers
    /// every other one onto `target`'s wait queue without waking it, so the
    /// transferred waiters are released one at a time as `target` (a mutex
    /// word already marked contended) is exited.
    ///
    /// `expected` is the value the caller last published to `word`; if the
    /// word has moved on (a racing signaller), the transfer is abandoned
    /// and everyone is woken instead — waking too many is merely slow,
    /// while requeueing on a stale protocol state could strand a waiter.
    ///
    /// The default is the kernel path (`FUTEX_CMP_REQUEUE`), correct for
    /// any backend whose `park` is a kernel block. The threads library
    /// overrides it to also migrate unbound threads between user-level
    /// sleep queues.
    fn unpark_requeue(&self, word: &AtomicU32, expected: u32, target: &AtomicU32, shared: bool) {
        let scope = if shared {
            Scope::Shared
        } else {
            Scope::Private
        };
        match futex::cmp_requeue(word, expected, 1, target, i32::MAX as u32, scope) {
            Ok(moved) => {
                sunmt_trace::probe!(sunmt_trace::Tag::FutexWake, word.as_ptr() as usize, 1u32);
                let _ = moved;
            }
            Err(_) => {
                // Stale `expected` (or an exotic futex failure): wake
                // everyone, the pre-morphing behaviour.
                sunmt_trace::probe!(
                    sunmt_trace::Tag::FutexWake,
                    word.as_ptr() as usize,
                    u32::MAX
                );
                let _ = futex::wake_all(word, scope);
            }
        }
    }

    /// Politely gives up the processor inside a spin loop.
    fn yield_now(&self);

    /// A stable identity for the current execution context, used by the
    /// `DEBUG` variant's ownership tracking. The default is the kernel
    /// task id; the threads library overrides it with the *thread* id so
    /// ownership survives an unbound thread's migration between LWPs.
    fn self_id(&self) -> u32 {
        sunmt_sys::task::gettid()
    }

    /// An opaque hint naming the LWP the caller is executing on, published
    /// by `ADAPTIVE` mutexes on acquire so waiters can ask
    /// [`Self::lwp_running`] about the holder. Zero means "no hint"; the
    /// default backend has no LWP bookkeeping, so that is all it offers.
    fn lwp_hint(&self) -> u32 {
        0
    }

    /// Whether the LWP behind a [`Self::lwp_hint`] value is believed to be
    /// on a processor right now — the paper's "spin only while the owner is
    /// running" query. Must err toward `true` (spin) when it cannot tell;
    /// callers cap the spin either way.
    fn lwp_running(&self, _hint: u32) -> bool {
        true
    }

    /// Priority inheritance: pushes the calling waiter's priority onto the
    /// LWP behind `owner_hint` (the published holder of the lock the caller
    /// is about to park on), so a preempting scheduler will not keep the
    /// holder off the processor while a higher-priority waiter sleeps.
    /// Returns the priority actually pushed, or 0 if no boost was applied
    /// (the owner already ran at least that high, or the backend has no
    /// priorities — the default).
    fn pi_boost(&self, _owner_hint: u32) -> i32 {
        0
    }

    /// Strips whatever [`Self::pi_boost`] pushed onto the LWP behind
    /// `owner_hint`, returning the boost that was removed (0 = there was
    /// none). Called by the lock release path.
    fn pi_strip(&self, _owner_hint: u32) -> i32 {
        0
    }
}

/// The default strategy: block the calling LWP in the kernel.
///
/// This is the behaviour of plain LWP code with no threads library loaded —
/// the degenerate "process = address space + one LWP" case the paper
/// requires to behave like a standard UNIX process.
pub struct KernelBlock;

impl BlockStrategy for KernelBlock {
    fn park(&self, word: &AtomicU32, expected: u32, shared: bool) {
        let scope = if shared {
            Scope::Shared
        } else {
            Scope::Private
        };
        // Mismatch and wake both mean "re-check"; real errors here are
        // programming bugs (bad pointer), which mmap'd atomics preclude.
        let _ = futex::wait(word, expected, scope);
    }

    fn unpark(&self, word: &AtomicU32, n: u32, shared: bool) {
        let scope = if shared {
            Scope::Shared
        } else {
            Scope::Private
        };
        sunmt_trace::probe!(sunmt_trace::Tag::FutexWake, word.as_ptr() as usize, n);
        let _ = futex::wake(word, n, scope);
    }

    fn yield_now(&self) {
        task::sched_yield();
    }
}

static KERNEL_BLOCK: KernelBlock = KernelBlock;
static STRATEGY: OnceLock<&'static dyn BlockStrategy> = OnceLock::new();

/// Installs the process-wide blocking strategy.
///
/// Called once by the threads library when it initializes; later calls are
/// ignored (the first installation wins). Returns whether the installation
/// took effect.
pub fn install(strategy: &'static dyn BlockStrategy) -> bool {
    STRATEGY.set(strategy).is_ok()
}

/// The current strategy ([`KernelBlock`] until something is installed).
#[inline]
pub fn current() -> &'static dyn BlockStrategy {
    match STRATEGY.get() {
        Some(s) => *s,
        None => &KERNEL_BLOCK,
    }
}

/// Parks through the current strategy; see [`BlockStrategy::park`].
#[inline]
pub fn park(word: &AtomicU32, expected: u32, shared: bool) {
    if shared {
        // Shared variables always block in the kernel, regardless of the
        // installed strategy: a user-level sleep queue is invisible to the
        // other processes mapping this variable.
        KERNEL_BLOCK.park(word, expected, true);
    } else {
        current().park(word, expected, false);
    }
}

/// Parks with a deadline through the current strategy; see
/// [`BlockStrategy::park_timeout`].
#[inline]
pub fn park_timeout(word: &AtomicU32, expected: u32, shared: bool, timeout: Duration) {
    if shared {
        KERNEL_BLOCK.park_timeout(word, expected, true, timeout);
    } else {
        current().park_timeout(word, expected, false, timeout);
    }
}

/// Unparks through the current strategy; see [`BlockStrategy::unpark`].
#[inline]
pub fn unpark(word: &AtomicU32, n: u32, shared: bool) {
    if shared {
        KERNEL_BLOCK.unpark(word, n, true);
    } else {
        current().unpark(word, n, false);
    }
}

/// Wakes one waiter and morphs the rest onto `target`; see
/// [`BlockStrategy::unpark_requeue`].
#[inline]
pub fn unpark_requeue(word: &AtomicU32, expected: u32, target: &AtomicU32, shared: bool) {
    if shared {
        KERNEL_BLOCK.unpark_requeue(word, expected, target, true);
    } else {
        current().unpark_requeue(word, expected, target, false);
    }
}

/// Yields through the current strategy.
#[inline]
pub fn yield_now() {
    current().yield_now();
}

/// The current execution context's identity (see [`BlockStrategy::self_id`]).
#[inline]
pub fn self_id() -> u32 {
    current().self_id()
}

/// The calling context's LWP hint (see [`BlockStrategy::lwp_hint`]).
#[inline]
pub fn lwp_hint() -> u32 {
    current().lwp_hint()
}

/// Whether the hinted LWP is running (see [`BlockStrategy::lwp_running`]).
#[inline]
pub fn lwp_running(hint: u32) -> bool {
    current().lwp_running(hint)
}

/// Boosts the hinted owner's priority (see [`BlockStrategy::pi_boost`]).
#[inline]
pub fn pi_boost(owner_hint: u32) -> i32 {
    current().pi_boost(owner_hint)
}

/// Strips an inherited boost (see [`BlockStrategy::pi_strip`]).
#[inline]
pub fn pi_strip(owner_hint: u32) -> i32 {
    current().pi_strip(owner_hint)
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::sync::atomic::Ordering;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn kernel_park_returns_on_value_mismatch() {
        let w = AtomicU32::new(5);
        // Must return immediately: the word does not hold `expected`.
        park(&w, 0, false);
        park(&w, 0, true);
    }

    #[test]
    fn kernel_unpark_wakes_kernel_parker() {
        let w = Arc::new(AtomicU32::new(0));
        let w2 = Arc::clone(&w);
        let h = std::thread::spawn(move || {
            while w2.load(Ordering::Acquire) == 0 {
                park(&w2, 0, false);
            }
        });
        std::thread::sleep(Duration::from_millis(5));
        w.store(1, Ordering::Release);
        unpark(&w, u32::MAX, false);
        h.join().unwrap();
    }
}
