//! Counting semaphores.
//!
//! "The semaphore synchronization facilities provide classic counting
//! semaphores. They are not as efficient as mutex locks, but they need not
//! be bracketed ... They also contain state so they may be used
//! asynchronously without acquiring a mutex as required by condition
//! variables."

use core::sync::atomic::{AtomicU32, Ordering};

use crate::strategy;
use crate::types::SyncType;

/// A SunOS-style counting semaphore (`sema_t`).
///
/// Zeroed memory is a valid semaphore with count 0 in the default variant.
/// This is the primitive used by the paper's Figure 6 synchronization-time
/// measurement (two threads ping-ponging on two semaphores).
#[repr(C)]
#[derive(Debug, Default)]
pub struct Sema {
    count: AtomicU32,
    waiters: AtomicU32,
    kind: AtomicU32,
}

impl Sema {
    /// Creates a semaphore with the given initial count and variant.
    pub const fn new(count: u32, kind: SyncType) -> Sema {
        Sema {
            count: AtomicU32::new(count),
            waiters: AtomicU32::new(0),
            kind: AtomicU32::new(kind.0),
        }
    }

    /// `sema_init()`: (re)initializes count and variant.
    ///
    /// Must not be called while any thread waits on the semaphore.
    pub fn init(&self, count: u32, kind: SyncType) {
        self.count.store(count, Ordering::Release);
        self.waiters.store(0, Ordering::Release);
        self.kind.store(kind.0, Ordering::Release);
    }

    #[inline]
    fn shared(&self) -> bool {
        SyncType(self.kind.load(Ordering::Relaxed)).is_shared()
    }

    #[inline]
    fn try_dec(&self) -> bool {
        let mut c = self.count.load(Ordering::Relaxed);
        while c > 0 {
            match self
                .count
                .compare_exchange_weak(c, c - 1, Ordering::Acquire, Ordering::Relaxed)
            {
                Ok(_) => return true,
                Err(actual) => c = actual,
            }
        }
        false
    }

    /// `sema_p()`: decrements the semaphore, blocking while it is zero.
    pub fn p(&self) {
        if self.try_dec() {
            return;
        }
        let shared = self.shared();
        let site = &self.count as *const _ as usize;
        let t0 = sunmt_stat::lock::slow_begin(site);
        self.waiters.fetch_add(1, Ordering::Relaxed);
        loop {
            if self.try_dec() {
                break;
            }
            sunmt_trace::probe!(
                sunmt_trace::Tag::SemaBlock,
                &self.count as *const _ as usize
            );
            if sunmt_stat::enabled() {
                sunmt_stat::lock::parked(site);
            }
            strategy::park(&self.count, 0, shared);
        }
        self.waiters.fetch_sub(1, Ordering::Relaxed);
        sunmt_stat::lock::block_end(site, t0);
    }

    /// `sema_timedp()`: like [`Self::p`], but gives up after `timeout`.
    ///
    /// Returns whether the decrement happened.
    pub fn timed_p(&self, timeout: core::time::Duration) -> bool {
        if self.try_dec() {
            return true;
        }
        let deadline = sunmt_sys::time::monotonic_now() + timeout;
        let shared = self.shared();
        let site = &self.count as *const _ as usize;
        let t0 = sunmt_stat::lock::slow_begin(site);
        self.waiters.fetch_add(1, Ordering::Relaxed);
        let got = loop {
            if self.try_dec() {
                break true;
            }
            let now = sunmt_sys::time::monotonic_now();
            if now >= deadline {
                break false;
            }
            sunmt_trace::probe!(
                sunmt_trace::Tag::SemaBlock,
                &self.count as *const _ as usize
            );
            if sunmt_stat::enabled() {
                sunmt_stat::lock::parked(site);
            }
            strategy::park_timeout(&self.count, 0, shared, deadline - now);
        };
        self.waiters.fetch_sub(1, Ordering::Relaxed);
        sunmt_stat::lock::block_end(site, t0);
        got
    }

    /// `sema_tryp()`: decrements only if blocking is not required; returns
    /// whether the decrement happened.
    pub fn try_p(&self) -> bool {
        self.try_dec()
    }

    /// `sema_v()`: increments the semaphore, waking one waiter if any.
    ///
    /// Safe to call from contexts that must not block (the paper allows
    /// semaphores "for asynchronous event notification (e.g. in signal
    /// handlers)").
    pub fn v(&self) {
        self.count.fetch_add(1, Ordering::Release);
        if self.waiters.load(Ordering::Relaxed) > 0 {
            strategy::unpark(&self.count, 1, self.shared());
        }
    }

    /// The current count (racy snapshot, for tests and diagnostics).
    pub fn count(&self) -> u32 {
        self.count.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn zeroed_semaphore_has_count_zero() {
        let zeroed = [0u8; core::mem::size_of::<Sema>()];
        // SAFETY: All-zero is the documented valid default state.
        let s: &Sema = unsafe { &*(zeroed.as_ptr() as *const Sema) };
        assert_eq!(s.count(), 0);
        assert!(!s.try_p());
        s.v();
        assert!(s.try_p());
    }

    #[test]
    fn p_after_v_does_not_block() {
        let s = Sema::new(0, SyncType::DEFAULT);
        s.v();
        s.v();
        s.p();
        s.p();
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn try_p_counts_exactly() {
        let s = Sema::new(3, SyncType::DEFAULT);
        assert!(s.try_p());
        assert!(s.try_p());
        assert!(s.try_p());
        assert!(!s.try_p());
    }

    #[test]
    fn v_unblocks_p() {
        let s = Arc::new(Sema::new(0, SyncType::DEFAULT));
        let s2 = Arc::clone(&s);
        let h = std::thread::spawn(move || s2.p());
        std::thread::sleep(Duration::from_millis(10));
        s.v();
        h.join().unwrap();
    }

    #[test]
    fn timed_p_times_out_on_empty_semaphore() {
        let s = Sema::new(0, SyncType::DEFAULT);
        let t0 = sunmt_sys::time::monotonic_now();
        assert!(!s.timed_p(Duration::from_millis(30)));
        let waited = sunmt_sys::time::monotonic_now() - t0;
        assert!(
            waited >= Duration::from_millis(25),
            "returned after {waited:?}"
        );
        // The failed acquire must not consume a later token.
        s.v();
        assert!(s.timed_p(Duration::from_secs(1)));
    }

    #[test]
    fn timed_p_succeeds_when_v_arrives() {
        let s = Arc::new(Sema::new(0, SyncType::DEFAULT));
        let s2 = Arc::clone(&s);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            s2.v();
        });
        assert!(s.timed_p(Duration::from_secs(10)));
        h.join().unwrap();
    }

    #[test]
    fn ping_pong_paper_figure6_pattern() {
        // The exact structure of the paper's synchronization measurement.
        let s1 = Arc::new(Sema::new(0, SyncType::DEFAULT));
        let s2 = Arc::new(Sema::new(0, SyncType::DEFAULT));
        let (a1, a2) = (Arc::clone(&s1), Arc::clone(&s2));
        let h = std::thread::spawn(move || {
            for _ in 0..1000 {
                a1.p();
                a2.v();
            }
        });
        for _ in 0..1000 {
            s1.v();
            s2.p();
        }
        h.join().unwrap();
    }

    #[test]
    fn tokens_are_neither_created_nor_lost_under_contention() {
        const LWPS: usize = 4;
        const ROUNDS: usize = 5_000;
        let s = Arc::new(Sema::new(2, SyncType::DEFAULT));
        let in_section = Arc::new(AtomicU32::new(0));
        let mut handles = Vec::new();
        for _ in 0..LWPS {
            let s = Arc::clone(&s);
            let in_section = Arc::clone(&in_section);
            handles.push(std::thread::spawn(move || {
                for _ in 0..ROUNDS {
                    s.p();
                    let now = in_section.fetch_add(1, Ordering::SeqCst) + 1;
                    assert!(now <= 2, "semaphore admitted {now} > 2 holders");
                    in_section.fetch_sub(1, Ordering::SeqCst);
                    s.v();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.count(), 2);
    }
}
