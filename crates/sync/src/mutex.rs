//! Mutual-exclusion locks.
//!
//! "Mutex locks provide simple mutual exclusion. They are low overhead in
//! both space and time and are therefore suitable for high frequency usage.
//! Mutex locks are strictly bracketing in that it is an error for a thread
//! to release a lock not held by the thread."
//!
//! # Queue-lock variants (ticket / MCS / futex-hybrid)
//!
//! Beyond the paper's sleep, spin, and adaptive variants — all of which
//! collapse onto one centralized word under real contention — the lock
//! word can also run a FIFO *ticket* protocol (arXiv 2512.08563's basic
//! lock suite for lightweight-thread environments):
//!
//! * [`SyncType::TICKET`] packs a next-ticket counter (high 16 bits) and a
//!   now-serving counter (low 16 bits) into the one lock word. Waiters
//!   spin; grants are strictly FIFO. Because all state lives in the mapped
//!   word, `TICKET | SHARED` works across processes unchanged.
//! * [`SyncType::HYBRID`] is the same ticket discipline with a bounded
//!   spin followed by a park on the word through the blocking strategy —
//!   unbound threads sleep on the user-level sleep queue, bound/LWP
//!   callers and `SHARED` variables block in the kernel futex. Release
//!   bumps now-serving and wakes the word only when someone is queued.
//! * [`SyncType::MCS`] swaps a *node index* into the word as the queue
//!   tail; each waiter spins, then parks, on its **own** node's state word
//!   and is handed off directly by its predecessor — no cache-line storm,
//!   no thundering herd. Nodes come from a per-process static pool, which
//!   is exactly why `MCS | SHARED` cannot work: the word would carry
//!   process-local node addresses that mean nothing in another address
//!   space, and a remote waiter could never spin on (or wake) a node it
//!   cannot map. `MCS | SHARED` therefore degrades to the `HYBRID`
//!   protocol, whose state is entirely in the shared word.

use core::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

use crate::strategy;
use crate::types::SyncType;

/// Lock word values (the classic three-state futex mutex).
const UNLOCKED: u32 = 0;
const LOCKED: u32 = 1;
const CONTENDED: u32 = 2;

/// Ticket-word layout: low half = now-serving, high half = next ticket.
/// Zero (serving == next == 0) is the unlocked state, preserving the
/// "allocated as zero may be used immediately" rule.
const TICKET_SERVING_MASK: u32 = 0xFFFF;
const TICKET_NEXT_UNIT: u32 = 1 << 16;

/// Spin budget of the futex-hybrid variant before a waiter parks.
const HYBRID_SPINS: u32 = 100;

/// Spin budget of an MCS waiter on its own node before it parks.
const MCS_SPINS: u32 = 100;

/// Spin budget for the adaptive variant when no owner-LWP hint is
/// available (no threads library installed, or the `DEBUG` bit claims the
/// owner word for holder identities).
const ADAPTIVE_SPINS: u32 = 100;

/// Hard cap on the adaptive spin phase even while the owner's LWP keeps
/// reading as running — bounds the damage from stale hints and from owners
/// blocked in places the run flags cannot see (plain system calls).
const ADAPTIVE_SPIN_CAP: u32 = 4096;

/// The effective protocol a queue-bit `SyncType` selects.
#[derive(Clone, Copy, PartialEq, Eq)]
enum QueueKind {
    /// FIFO ticket spin.
    Ticket,
    /// FIFO ticket with queue-then-park.
    Hybrid,
    /// Node-queue handoff (per-process).
    Mcs,
}

/// Maps the variant bits to the protocol actually run. `MCS | SHARED`
/// degrades to `Hybrid`: MCS nodes are per-process (see the module docs),
/// while the hybrid protocol keeps the FIFO guarantee with all state in
/// the shared word.
#[inline]
fn queue_kind(kind: SyncType) -> Option<QueueKind> {
    if kind.is_mcs() {
        if kind.is_shared() {
            Some(QueueKind::Hybrid)
        } else {
            Some(QueueKind::Mcs)
        }
    } else if kind.is_hybrid() {
        Some(QueueKind::Hybrid)
    } else if kind.is_ticket() {
        Some(QueueKind::Ticket)
    } else {
        None
    }
}

// ---------------------------------------------------------------------
// The per-process MCS node pool.
//
// The lock word stores `index + 1` of the tail node; `0` means unheld.
// Each enter claims a node for the duration of the acquire..release
// bracket (queue position while waiting, holder identity afterwards), so
// the pool bounds *concurrent* MCS brackets, not locks: a node is
// returned as soon as its release hands off.

/// Concurrent MCS enter..exit brackets supported per process. Allocation
/// spins (politely) when all nodes are claimed, so exceeding it degrades
/// throughput, never correctness.
const MCS_POOL: usize = 1024;

/// Node states: the owner-to-be spins on `WAIT`, announces `PARKED`
/// before sleeping so the releaser knows a futex wake is needed, and the
/// releaser stores `GRANTED` to hand off.
const MCS_GRANTED: u32 = 0;
const MCS_WAIT: u32 = 1;
const MCS_PARKED: u32 = 2;

struct McsNode {
    /// Successor node (`index + 1`; 0 = none yet).
    next: AtomicU32,
    /// Handoff word ([`MCS_WAIT`] / [`MCS_PARKED`] / [`MCS_GRANTED`]).
    state: AtomicU32,
    /// Pool claim flag (0 free, 1 claimed).
    claimed: AtomicU32,
}

impl McsNode {
    const fn new() -> McsNode {
        McsNode {
            next: AtomicU32::new(0),
            state: AtomicU32::new(0),
            claimed: AtomicU32::new(0),
        }
    }
}

static MCS_NODES: [McsNode; MCS_POOL] = [const { McsNode::new() }; MCS_POOL];

/// Rotating scan start, so allocations spread over the pool instead of
/// contending on slot 0.
static MCS_CLOCK: AtomicUsize = AtomicUsize::new(0);

/// Claims a free node (index), spinning politely under pool exhaustion.
fn mcs_alloc() -> usize {
    let start = MCS_CLOCK.fetch_add(1, Ordering::Relaxed);
    loop {
        for probe in 0..MCS_POOL {
            let i = (start + probe) % MCS_POOL;
            if MCS_NODES[i].claimed.load(Ordering::Relaxed) == 0
                && MCS_NODES[i]
                    .claimed
                    .compare_exchange(0, 1, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                return i;
            }
        }
        strategy::yield_now();
    }
}

#[inline]
fn mcs_free(i: usize) {
    MCS_NODES[i].claimed.store(0, Ordering::Release);
}

/// A SunOS-style mutual exclusion lock (`mutex_t`).
///
/// Four words, position independent, and valid when zeroed — it may be
/// embedded in a structure, placed in `MAP_SHARED` memory, or stored in a
/// file record (the paper's database example) when initialized with
/// [`SyncType::SHARED`].
///
/// The uncontended paths are a single compare-and-swap in user mode; the
/// kernel is entered only to sleep or to wake a sleeper.
#[repr(C)]
#[derive(Debug, Default)]
pub struct Mutex {
    word: AtomicU32,
    kind: AtomicU32,
    /// Holder identity (zero = untracked/unheld). The `DEBUG` variant
    /// stores the holder's thread id here; otherwise the `ADAPTIVE` variant
    /// stores the holder's LWP hint so waiters can ask the blocking
    /// strategy whether the owner is still on a processor. When both bits
    /// are set, `DEBUG` wins and the adaptive path falls back to a fixed
    /// spin budget.
    owner: AtomicU32,
    /// The holder's MCS node (`index + 1`; zero otherwise). Written only
    /// by the holder between acquire and release, so plain relaxed
    /// accesses suffice — holdership itself transfers through the node
    /// state word. Unused by the non-MCS variants.
    qnode: AtomicU32,
}

impl Mutex {
    /// Creates a mutex of the given variant, unlocked.
    pub const fn new(kind: SyncType) -> Mutex {
        Mutex {
            word: AtomicU32::new(UNLOCKED),
            kind: AtomicU32::new(kind.0),
            owner: AtomicU32::new(0),
            qnode: AtomicU32::new(0),
        }
    }

    /// `mutex_init()`: (re)initializes the variable to the given variant.
    ///
    /// Must not be called while any thread holds or waits on the lock.
    pub fn init(&self, kind: SyncType) {
        self.word.store(UNLOCKED, Ordering::Release);
        self.kind.store(kind.0, Ordering::Release);
        self.owner.store(0, Ordering::Release);
        self.qnode.store(0, Ordering::Release);
    }

    /// `mutex_destroy()`: asserts the lock is unheld and scrubs it back to
    /// the zeroed (default-variant, unlocked) state.
    ///
    /// # Panics
    ///
    /// Panics when the lock is still held — destroying a held mutex is the
    /// bracketing error SunOS documents as undefined; here it is caught in
    /// every variant.
    pub fn destroy(&self) {
        assert!(!self.is_locked(), "mutex_destroy of a held mutex");
        self.word.store(UNLOCKED, Ordering::Release);
        self.kind.store(0, Ordering::Release);
        self.owner.store(0, Ordering::Release);
        self.qnode.store(0, Ordering::Release);
    }

    #[inline]
    fn kind(&self) -> SyncType {
        SyncType(self.kind.load(Ordering::Relaxed))
    }

    /// The lock's stat identity: the word address, which is also what the
    /// futex sleeps on and what the trace probes report.
    #[inline]
    fn site(&self) -> usize {
        &self.word as *const _ as usize
    }

    /// `mutex_enter()`: acquires the lock, blocking while it is held.
    ///
    /// # Panics
    ///
    /// The `DEBUG` variant panics on recursive entry by the holder; other
    /// variants deadlock, as on SunOS.
    #[inline]
    pub fn enter(&self) {
        let kind = self.kind();
        if let Some(q) = queue_kind(kind) {
            self.enter_queue(kind, q);
            return;
        }
        if kind.is_debug() {
            self.enter_debug();
            return;
        }
        if self
            .word
            .compare_exchange(UNLOCKED, LOCKED, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            if kind.is_adaptive() {
                self.publish_owner_hint();
            }
            if sunmt_stat::enabled() {
                sunmt_stat::lock::acquired(self.site());
            }
            return;
        }
        self.enter_slow();
    }

    /// Publishes which LWP the new holder runs on ("the information as to
    /// whether the owner of a lock is running is maintained by the kernel";
    /// here the holder volunteers it at acquire time).
    #[inline]
    fn publish_owner_hint(&self) {
        self.owner.store(strategy::lwp_hint(), Ordering::Release);
    }

    #[cold]
    fn enter_debug(&self) {
        let me = strategy::self_id();
        assert_ne!(
            self.owner.load(Ordering::Acquire),
            me,
            "DEBUG mutex: recursive mutex_enter by the holder"
        );
        if self
            .word
            .compare_exchange(UNLOCKED, LOCKED, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            self.enter_slow();
        } else if sunmt_stat::enabled() {
            sunmt_stat::lock::acquired(self.site());
        }
        self.owner.store(me, Ordering::Release);
    }

    #[cold]
    fn enter_slow(&self) {
        let kind = self.kind();
        sunmt_trace::probe!(
            sunmt_trace::Tag::MutexBlock,
            &self.word as *const _ as usize,
            kind.0
        );
        // Block time runs from here to the eventual acquire; `t0 == 0`
        // (stats off) makes every downstream stat call a no-op.
        let t0 = sunmt_stat::lock::slow_begin(self.site());
        if kind.is_spin() {
            // Spin variant: never sleep.
            let mut spins = 0u32;
            loop {
                if self.word.load(Ordering::Relaxed) == UNLOCKED
                    && self
                        .word
                        .compare_exchange_weak(
                            UNLOCKED,
                            LOCKED,
                            Ordering::Acquire,
                            Ordering::Relaxed,
                        )
                        .is_ok()
                {
                    if sunmt_stat::enabled() {
                        sunmt_stat::lock::spun(self.site(), u64::from(spins), true);
                        sunmt_stat::lock::acquired_slow(self.site(), t0);
                    }
                    return;
                }
                core::hint::spin_loop();
                spins += 1;
                if spins % 1024 == 0 {
                    strategy::yield_now();
                }
            }
        }
        if kind.is_adaptive() {
            // Adaptive variant, per the paper: spin while the holder is
            // running on another LWP (it is mid-critical-section and will
            // release soon), sleep as soon as it is not (it cannot make
            // progress, so spinning is pure waste). The holder published
            // its LWP hint in `owner` at acquire time; `DEBUG` claims that
            // word for holder identities, in which case we degrade to a
            // small fixed budget.
            let owner_hinted = !kind.is_debug();
            let mut spins = 0u32;
            loop {
                if self.word.load(Ordering::Relaxed) == UNLOCKED
                    && self
                        .word
                        .compare_exchange_weak(
                            UNLOCKED,
                            LOCKED,
                            Ordering::Acquire,
                            Ordering::Relaxed,
                        )
                        .is_ok()
                {
                    if owner_hinted {
                        self.publish_owner_hint();
                    }
                    sunmt_trace::probe!(
                        sunmt_trace::Tag::MutexSpin,
                        &self.word as *const _ as usize,
                        spins
                    );
                    if sunmt_stat::enabled() {
                        sunmt_stat::lock::spun(self.site(), u64::from(spins), true);
                        sunmt_stat::lock::acquired_slow(self.site(), t0);
                    }
                    return;
                }
                core::hint::spin_loop();
                spins += 1;
                let keep_spinning = if owner_hinted {
                    spins < ADAPTIVE_SPIN_CAP
                        && strategy::lwp_running(self.owner.load(Ordering::Acquire))
                } else {
                    spins < ADAPTIVE_SPINS
                };
                if !keep_spinning {
                    break;
                }
            }
            sunmt_trace::probe!(
                sunmt_trace::Tag::MutexSpin,
                &self.word as *const _ as usize,
                spins
            );
            if sunmt_stat::enabled() {
                sunmt_stat::lock::spun(self.site(), u64::from(spins), false);
            }
        }
        // Sleep path: announce contention so the releaser knows to wake us.
        let shared = kind.is_shared();
        let pi = kind.is_adaptive() && !kind.is_debug();
        while self.word.swap(CONTENDED, Ordering::Acquire) != UNLOCKED {
            if sunmt_stat::enabled() {
                sunmt_stat::lock::parked(self.site());
            }
            if pi {
                // Priority inheritance: before sleeping, push our priority
                // onto the LWP the recorded holder runs on, so a preempting
                // scheduler keeps the critical section on its processor
                // instead of starving it below us. The hint is re-read every
                // lap — the lock may have changed hands while we slept — and
                // the release path strips the boost.
                let pushed = strategy::pi_boost(self.owner.load(Ordering::Acquire));
                if pushed > 0 {
                    sunmt_trace::probe!(
                        sunmt_trace::Tag::PiBoost,
                        &self.word as *const _ as usize,
                        pushed
                    );
                }
            }
            strategy::park(&self.word, CONTENDED, shared);
        }
        if kind.is_adaptive() && !kind.is_debug() {
            self.publish_owner_hint();
        }
        if sunmt_stat::enabled() {
            sunmt_stat::lock::acquired_slow(self.site(), t0);
        }
    }

    // -----------------------------------------------------------------
    // Queue-lock protocols (ticket / futex-hybrid / MCS).

    /// `mutex_enter` for the queue variants. The `DEBUG` bit composes:
    /// recursion is caught before queueing (a recursive ticket enter would
    /// otherwise deadlock silently) and the holder identity is published
    /// after the grant.
    fn enter_queue(&self, kind: SyncType, q: QueueKind) {
        if kind.is_debug() {
            assert_ne!(
                self.owner.load(Ordering::Acquire),
                strategy::self_id(),
                "DEBUG mutex: recursive mutex_enter by the holder"
            );
        }
        match q {
            QueueKind::Ticket => self.enter_ticket(kind, false),
            QueueKind::Hybrid => self.enter_ticket(kind, true),
            QueueKind::Mcs => self.enter_mcs(),
        }
        if kind.is_debug() {
            self.owner.store(strategy::self_id(), Ordering::Release);
        }
    }

    /// The ticket protocol: take a ticket with one `fetch_add`, wait until
    /// now-serving reaches it. `park` selects the futex-hybrid discipline
    /// (bounded spin, then sleep on the word); without it the waiter spins
    /// with periodic yields, the FIFO spin lock.
    fn enter_ticket(&self, kind: SyncType, park: bool) {
        let w = self.word.fetch_add(TICKET_NEXT_UNIT, Ordering::AcqRel);
        let my = (w >> 16) & TICKET_SERVING_MASK;
        if w & TICKET_SERVING_MASK == my {
            if sunmt_stat::enabled() {
                sunmt_stat::lock::acquired(self.site());
            }
            return;
        }
        sunmt_trace::probe!(
            sunmt_trace::Tag::MutexQueueWait,
            self.site(),
            my.wrapping_sub(w & TICKET_SERVING_MASK) & TICKET_SERVING_MASK
        );
        let t0 = sunmt_stat::lock::slow_begin(self.site());
        let shared = kind.is_shared();
        let mut spins = 0u32;
        let mut ever_parked = false;
        loop {
            let cur = self.word.load(Ordering::Acquire);
            if cur & TICKET_SERVING_MASK == my {
                break;
            }
            if park && spins >= HYBRID_SPINS {
                // Queue-then-park: sleep on the whole word. Any grant (or
                // a new arrival) changes it, so the sleep can never miss
                // the serving bump; spurious wakes just re-check.
                if sunmt_stat::enabled() {
                    sunmt_stat::lock::parked(self.site());
                }
                ever_parked = true;
                strategy::park(&self.word, cur, shared);
            } else {
                core::hint::spin_loop();
                spins += 1;
                if !park && spins % 1024 == 0 {
                    strategy::yield_now();
                }
            }
        }
        if sunmt_stat::enabled() {
            sunmt_stat::lock::spun(self.site(), u64::from(spins), !ever_parked);
            sunmt_stat::lock::acquired_slow(self.site(), t0);
        }
    }

    /// Releases a ticket-protocol lock: bump now-serving (high half
    /// preserved — plain `fetch_add(1)` would carry into the next-ticket
    /// field at the 16-bit wrap and issue a ticket nobody holds), then, in
    /// the hybrid discipline, wake the word when someone is queued. The
    /// wake is all-sleepers: only the next ticket holder proceeds, the
    /// rest re-check and re-park — the herd a dedicated queue (MCS)
    /// avoids, priced against the shared-memory capability it buys.
    fn exit_ticket(&self, kind: SyncType, park: bool) {
        let mut cur = self.word.load(Ordering::Relaxed);
        let had_waiters = loop {
            debug_assert_ne!(
                (cur >> 16) & TICKET_SERVING_MASK,
                cur & TICKET_SERVING_MASK,
                "mutex_exit of an unheld mutex"
            );
            let new_serving = (cur.wrapping_add(1)) & TICKET_SERVING_MASK;
            let new = (cur & !TICKET_SERVING_MASK) | new_serving;
            match self
                .word
                .compare_exchange_weak(cur, new, Ordering::Release, Ordering::Relaxed)
            {
                Ok(_) => break (cur >> 16) & TICKET_SERVING_MASK != new_serving,
                Err(v) => cur = v,
            }
        };
        if park && had_waiters {
            strategy::unpark(&self.word, u32::MAX, kind.is_shared());
        }
    }

    /// The MCS protocol: swap our node in as the queue tail; if there was
    /// a predecessor, link behind it and wait on our *own* node's state
    /// word — a bounded spin, then a park announced via [`MCS_PARKED`] so
    /// the releaser knows whether a futex wake is owed.
    fn enter_mcs(&self) {
        let my = mcs_alloc();
        let node = &MCS_NODES[my];
        node.next.store(0, Ordering::Relaxed);
        node.state.store(MCS_WAIT, Ordering::Relaxed);
        let tag = my as u32 + 1;
        let prev = self.word.swap(tag, Ordering::AcqRel);
        if prev == UNLOCKED {
            self.qnode.store(tag, Ordering::Relaxed);
            if sunmt_stat::enabled() {
                sunmt_stat::lock::acquired(self.site());
            }
            return;
        }
        sunmt_trace::probe!(sunmt_trace::Tag::MutexQueueWait, self.site(), prev);
        let t0 = sunmt_stat::lock::slow_begin(self.site());
        MCS_NODES[(prev - 1) as usize]
            .next
            .store(tag, Ordering::Release);
        let mut spins = 0u32;
        let mut ever_parked = false;
        loop {
            match node.state.load(Ordering::Acquire) {
                MCS_GRANTED => break,
                MCS_WAIT if spins < MCS_SPINS => {
                    core::hint::spin_loop();
                    spins += 1;
                }
                _ => {
                    // Announce the park; losing the race to a concurrent
                    // grant means we are already the holder.
                    if node
                        .state
                        .compare_exchange(MCS_WAIT, MCS_PARKED, Ordering::AcqRel, Ordering::Acquire)
                        .is_err()
                        && node.state.load(Ordering::Acquire) == MCS_GRANTED
                    {
                        break;
                    }
                    if sunmt_stat::enabled() {
                        sunmt_stat::lock::parked(self.site());
                    }
                    ever_parked = true;
                    // MCS nodes are process-local, so the park is always
                    // private scope — which is why MCS | SHARED degrades
                    // to the hybrid protocol instead of reaching here.
                    strategy::park(&node.state, MCS_PARKED, false);
                }
            }
        }
        self.qnode.store(tag, Ordering::Relaxed);
        if sunmt_stat::enabled() {
            sunmt_stat::lock::spun(self.site(), u64::from(spins), !ever_parked);
            sunmt_stat::lock::acquired_slow(self.site(), t0);
        }
    }

    /// Releases an MCS lock: hand off to the linked successor, or swing
    /// the tail back to empty. A successor that has swapped the tail but
    /// not yet linked is waited out (it is one store away).
    fn exit_mcs(&self) {
        let my = self.qnode.load(Ordering::Relaxed);
        debug_assert_ne!(my, 0, "mutex_exit of an unheld mutex");
        self.qnode.store(0, Ordering::Relaxed);
        let node = &MCS_NODES[(my - 1) as usize];
        let mut next = node.next.load(Ordering::Acquire);
        if next == 0 {
            if self
                .word
                .compare_exchange(my, UNLOCKED, Ordering::Release, Ordering::Relaxed)
                .is_ok()
            {
                mcs_free((my - 1) as usize);
                return;
            }
            while {
                next = node.next.load(Ordering::Acquire);
                next == 0
            } {
                core::hint::spin_loop();
            }
        }
        // Our node is dead once the successor is known; recycle it before
        // the handoff so the pool never holds more nodes than brackets.
        mcs_free((my - 1) as usize);
        let succ = &MCS_NODES[(next - 1) as usize];
        let prev = succ.state.swap(MCS_GRANTED, Ordering::AcqRel);
        sunmt_trace::probe!(
            sunmt_trace::Tag::MutexHandoff,
            self.site(),
            u32::from(prev == MCS_PARKED)
        );
        if prev == MCS_PARKED {
            strategy::unpark(&succ.state, 1, false);
        }
    }

    /// `mutex_tryenter` for the queue variants: one atomic claim attempt,
    /// never queueing.
    fn try_enter_queue(&self, kind: SyncType, q: QueueKind) -> bool {
        let ok = match q {
            QueueKind::Ticket | QueueKind::Hybrid => {
                let cur = self.word.load(Ordering::Relaxed);
                // Free iff next == serving; taking the ticket then grants
                // immediately.
                (cur >> 16) & TICKET_SERVING_MASK == cur & TICKET_SERVING_MASK
                    && self
                        .word
                        .compare_exchange(
                            cur,
                            cur.wrapping_add(TICKET_NEXT_UNIT),
                            Ordering::Acquire,
                            Ordering::Relaxed,
                        )
                        .is_ok()
            }
            QueueKind::Mcs => {
                let my = mcs_alloc();
                let node = &MCS_NODES[my];
                node.next.store(0, Ordering::Relaxed);
                node.state.store(MCS_WAIT, Ordering::Relaxed);
                let tag = my as u32 + 1;
                if self
                    .word
                    .compare_exchange(UNLOCKED, tag, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
                {
                    self.qnode.store(tag, Ordering::Relaxed);
                    true
                } else {
                    mcs_free(my);
                    false
                }
            }
        };
        if ok {
            if kind.is_debug() {
                self.owner.store(strategy::self_id(), Ordering::Release);
            }
            if sunmt_stat::enabled() {
                sunmt_stat::lock::acquired(self.site());
            }
        }
        ok
    }

    /// `mutex_exit` for the queue variants.
    fn exit_queue(&self, kind: SyncType, q: QueueKind) {
        if sunmt_stat::enabled() {
            sunmt_stat::lock::released(self.site());
        }
        if kind.is_debug() {
            assert_eq!(
                self.owner.load(Ordering::Acquire),
                strategy::self_id(),
                "DEBUG mutex: mutex_exit by a non-holder"
            );
            self.owner.store(0, Ordering::Release);
        }
        match q {
            QueueKind::Ticket => self.exit_ticket(kind, false),
            QueueKind::Hybrid => self.exit_ticket(kind, true),
            QueueKind::Mcs => self.exit_mcs(),
        }
    }

    /// Prepares this mutex as a wait-morphing target and returns its lock
    /// word, or `None` when morphing is not applicable.
    ///
    /// On success the word has been marked `CONTENDED`, so the holder's
    /// eventual `mutex_exit` is guaranteed to wake one of the waiters a
    /// broadcast requeues onto it — that handoff chain is what keeps
    /// morphed waiters live. Returns `None` when:
    ///
    /// * the variant is a spin lock (its waiters never sleep on the word,
    ///   so there is no futex queue to morph onto),
    /// * the mutex's scope disagrees with the condvar's (`shared`) — the
    ///   kernel keys private and shared futex queues differently, so a
    ///   cross-scope requeue would strand waiters, or
    /// * the mutex is currently unlocked — no `mutex_exit` is coming, so
    ///   requeued waiters could sleep forever; the caller must fall back
    ///   to waking everyone.
    pub(crate) fn requeue_target(&self, shared: bool) -> Option<&AtomicU32> {
        let kind = self.kind();
        if kind.is_spin() || kind.is_queue() || kind.is_shared() != shared {
            // Queue variants run a FIFO word protocol, not the
            // three-state one — there is no CONTENDED state to park a
            // morphed waiter behind, so broadcasts wake everyone instead.
            return None;
        }
        let mut cur = self.word.load(Ordering::Relaxed);
        loop {
            match cur {
                UNLOCKED => return None,
                CONTENDED => return Some(&self.word),
                _ => match self.word.compare_exchange_weak(
                    cur,
                    CONTENDED,
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => return Some(&self.word),
                    Err(v) => cur = v,
                },
            }
        }
    }

    /// Reacquires the lock after a condition-variable wait.
    ///
    /// Unlike `enter`, the sleep path always leaves the word `CONTENDED`:
    /// a waiter coming back from a wait may have siblings that a broadcast
    /// morphed onto this mutex, and only a `CONTENDED` release wakes the
    /// next one. Taking the lock as `LOCKED` here could leave the rest of
    /// the morphed chain asleep forever.
    pub(crate) fn enter_cv(&self) {
        let kind = self.kind();
        if kind.is_spin() || kind.is_queue() {
            // Spin and queue waiters are never morphed (`requeue_target`
            // declines them); the plain path is correct.
            self.enter();
            return;
        }
        if self
            .word
            .compare_exchange(UNLOCKED, CONTENDED, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            let t0 = sunmt_stat::lock::slow_begin(self.site());
            let shared = kind.is_shared();
            while self.word.swap(CONTENDED, Ordering::Acquire) != UNLOCKED {
                if sunmt_stat::enabled() {
                    sunmt_stat::lock::parked(self.site());
                }
                strategy::park(&self.word, CONTENDED, shared);
            }
            if sunmt_stat::enabled() {
                sunmt_stat::lock::acquired_slow(self.site(), t0);
            }
        } else if sunmt_stat::enabled() {
            sunmt_stat::lock::acquired(self.site());
        }
        if kind.is_debug() {
            self.owner.store(strategy::self_id(), Ordering::Release);
        } else if kind.is_adaptive() {
            self.publish_owner_hint();
        }
    }

    /// `mutex_tryenter()`: acquires the lock only if that does not require
    /// blocking; returns whether it was acquired.
    ///
    /// "Can be used to avoid deadlock in operations that would normally
    /// violate the lock hierarchy."
    #[inline]
    pub fn try_enter(&self) -> bool {
        let kind = self.kind();
        if let Some(q) = queue_kind(kind) {
            return self.try_enter_queue(kind, q);
        }
        let ok = self
            .word
            .compare_exchange(UNLOCKED, LOCKED, Ordering::Acquire, Ordering::Relaxed)
            .is_ok();
        if ok {
            if kind.is_debug() {
                self.owner.store(strategy::self_id(), Ordering::Release);
            } else if kind.is_adaptive() {
                self.publish_owner_hint();
            }
            if sunmt_stat::enabled() {
                sunmt_stat::lock::acquired(self.site());
            }
        }
        ok
    }

    /// `mutex_exit()`: releases the lock, waking one waiter if any.
    ///
    /// Releasing a mutex the caller does not hold is a logic error (the
    /// locks are "strictly bracketing"); debug builds detect release of an
    /// unlocked mutex, and the `DEBUG` variant panics on release by a
    /// non-holder in any build.
    #[inline]
    pub fn exit(&self) {
        let kind = self.kind();
        if let Some(q) = queue_kind(kind) {
            self.exit_queue(kind, q);
            return;
        }
        // Close the hold interval while still the holder (the site's
        // hold clock is single-writer only under the lock's exclusion).
        if sunmt_stat::enabled() {
            sunmt_stat::lock::released(self.site());
        }
        if kind.is_debug() {
            let me = strategy::self_id();
            assert_eq!(
                self.owner.load(Ordering::Acquire),
                me,
                "DEBUG mutex: mutex_exit by a non-holder"
            );
            self.owner.store(0, Ordering::Release);
        } else if kind.is_adaptive() {
            // Retract the hint *before* releasing the word: a spinner must
            // never keep spinning on our hint after the next holder has
            // taken over. A momentary zero hint reads as "running", which
            // is the conservative direction. Any priority-inheritance boost
            // waiters pushed onto that LWP dies with the critical section.
            let stripped = strategy::pi_strip(self.owner.swap(0, Ordering::AcqRel));
            if stripped > 0 {
                sunmt_trace::probe!(
                    sunmt_trace::Tag::PiStrip,
                    &self.word as *const _ as usize,
                    stripped
                );
            }
        }
        let prev = self.word.swap(UNLOCKED, Ordering::Release);
        debug_assert_ne!(prev, UNLOCKED, "mutex_exit of an unheld mutex");
        if prev == CONTENDED {
            strategy::unpark(&self.word, 1, kind.is_shared());
        }
    }

    /// Runs `f` with the lock held (RAII convenience over enter/exit).
    pub fn with<R>(&self, f: impl FnOnce() -> R) -> R {
        self.enter();
        let guard = ExitOnDrop(self);
        let r = f();
        drop(guard);
        r
    }

    /// Whether the lock is currently held by someone (a racy snapshot, for
    /// assertions and tests only).
    pub fn is_locked(&self) -> bool {
        let w = self.word.load(Ordering::Relaxed);
        match queue_kind(self.kind()) {
            // Ticket protocols are held while serving trails next.
            Some(QueueKind::Ticket) | Some(QueueKind::Hybrid) => {
                (w >> 16) & TICKET_SERVING_MASK != w & TICKET_SERVING_MASK
            }
            // Any tail node means a holder (or queued waiters behind one).
            Some(QueueKind::Mcs) => w != UNLOCKED,
            None => w != UNLOCKED,
        }
    }
}

struct ExitOnDrop<'a>(&'a Mutex);

impl Drop for ExitOnDrop<'_> {
    fn drop(&mut self) {
        self.0.exit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn zeroed_bytes_are_a_valid_unlocked_mutex() {
        // The paper's "allocated as zero may be used immediately" rule.
        let zeroed = [0u8; core::mem::size_of::<Mutex>()];
        // SAFETY: Mutex is repr(C) over four AtomicU32s; all-zero is the
        // documented valid default state.
        let m: &Mutex = unsafe { &*(zeroed.as_ptr() as *const Mutex) };
        assert!(!m.is_locked());
        assert!(m.try_enter());
        assert!(!m.try_enter());
        m.exit();
    }

    #[test]
    fn enter_exit_round_trip() {
        let m = Mutex::new(SyncType::DEFAULT);
        m.enter();
        assert!(m.is_locked());
        m.exit();
        assert!(!m.is_locked());
    }

    #[test]
    fn try_enter_fails_when_held() {
        let m = Mutex::new(SyncType::DEFAULT);
        m.enter();
        assert!(!m.try_enter());
        m.exit();
        assert!(m.try_enter());
        m.exit();
    }

    fn hammer(kind: SyncType) {
        const LWPS: usize = 4;
        const ITERS: usize = 10_000;
        struct Shared(std::cell::UnsafeCell<usize>);
        // SAFETY: The cell is only accessed under the mutex being tested.
        unsafe impl Sync for Shared {}
        let m = Arc::new(Mutex::new(kind));
        let counter = Arc::new(Shared(std::cell::UnsafeCell::new(0usize)));
        let mut handles = Vec::new();
        for _ in 0..LWPS {
            let m = Arc::clone(&m);
            let c = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                for _ in 0..ITERS {
                    m.enter();
                    // SAFETY: Exclusive by mutual exclusion.
                    unsafe { *c.0.get() += 1 };
                    m.exit();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // SAFETY: All writers joined.
        assert_eq!(unsafe { *counter.0.get() }, LWPS * ITERS);
    }

    #[test]
    fn mutual_exclusion_default_variant() {
        hammer(SyncType::DEFAULT);
    }

    #[test]
    fn mutual_exclusion_spin_variant() {
        hammer(SyncType::SPIN);
    }

    #[test]
    fn mutual_exclusion_adaptive_variant() {
        hammer(SyncType::ADAPTIVE);
    }

    #[test]
    fn mutual_exclusion_ticket_variant() {
        hammer(SyncType::TICKET);
    }

    #[test]
    fn mutual_exclusion_mcs_variant() {
        hammer(SyncType::MCS);
    }

    #[test]
    fn mutual_exclusion_hybrid_variant() {
        hammer(SyncType::HYBRID);
    }

    #[test]
    fn mutual_exclusion_debug_queue_variants() {
        hammer(SyncType::TICKET | SyncType::DEBUG);
        hammer(SyncType::MCS | SyncType::DEBUG);
        hammer(SyncType::HYBRID | SyncType::DEBUG);
    }

    #[test]
    fn queue_variants_try_enter_and_is_locked() {
        for kind in [SyncType::TICKET, SyncType::MCS, SyncType::HYBRID] {
            let m = Mutex::new(kind);
            assert!(!m.is_locked());
            assert!(m.try_enter());
            assert!(m.is_locked());
            assert!(!m.try_enter());
            m.exit();
            assert!(!m.is_locked());
            // Grants stay FIFO across the counter wrap region too: cycle
            // enough brackets to wrap a 16-bit ticket space.
            for _ in 0..70_000 {
                m.enter();
                m.exit();
            }
            assert!(!m.is_locked());
        }
    }

    #[test]
    fn mcs_shared_degrades_to_hybrid() {
        // MCS nodes are process-local; or'ing SHARED must select the
        // all-in-the-word hybrid protocol (word never holds a node index).
        let m = Mutex::new(SyncType::MCS | SyncType::SHARED);
        m.enter();
        assert!(m.is_locked());
        m.exit();
        assert!(!m.is_locked());
        hammer(SyncType::MCS | SyncType::SHARED);
    }

    #[test]
    fn destroy_scrubs_back_to_default() {
        let m = Mutex::new(SyncType::TICKET);
        m.enter();
        m.exit();
        m.destroy();
        assert!(!m.is_locked());
        // After destroy the variable is the zeroed default again.
        m.init(SyncType::DEFAULT);
        m.enter();
        m.exit();
    }

    #[test]
    #[should_panic(expected = "mutex_destroy of a held mutex")]
    fn destroy_of_held_mutex_panics() {
        let m = Mutex::new(SyncType::DEFAULT);
        m.enter();
        m.destroy();
    }

    #[test]
    fn with_releases_on_exit() {
        let m = Mutex::new(SyncType::DEFAULT);
        let v = m.with(|| 41) + 1;
        assert_eq!(v, 42);
        assert!(!m.is_locked());
    }

    #[test]
    fn debug_variant_allows_correct_bracketing() {
        let m = Mutex::new(SyncType::DEBUG);
        m.enter();
        m.exit();
        assert!(m.try_enter());
        m.exit();
        hammer(SyncType::DEBUG);
    }

    #[test]
    #[should_panic(expected = "recursive mutex_enter")]
    fn debug_variant_panics_on_recursive_enter() {
        let m = Mutex::new(SyncType::DEBUG);
        m.enter();
        m.enter();
    }

    #[test]
    #[should_panic(expected = "mutex_exit by a non-holder")]
    fn debug_variant_panics_on_foreign_exit() {
        let m = Arc::new(Mutex::new(SyncType::DEBUG));
        m.enter();
        let m2 = Arc::clone(&m);
        // A different LWP releasing someone else's lock is caught.
        let result = std::thread::spawn(move || m2.exit()).join();
        // Re-panic in this thread so should_panic observes it.
        if let Err(p) = result {
            std::panic::resume_unwind(p);
        }
    }
}
