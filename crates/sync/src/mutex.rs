//! Mutual-exclusion locks.
//!
//! "Mutex locks provide simple mutual exclusion. They are low overhead in
//! both space and time and are therefore suitable for high frequency usage.
//! Mutex locks are strictly bracketing in that it is an error for a thread
//! to release a lock not held by the thread."

use core::sync::atomic::{AtomicU32, Ordering};

use crate::strategy;
use crate::types::SyncType;

/// Lock word values (the classic three-state futex mutex).
const UNLOCKED: u32 = 0;
const LOCKED: u32 = 1;
const CONTENDED: u32 = 2;

/// Spin budget for the adaptive variant when no owner-LWP hint is
/// available (no threads library installed, or the `DEBUG` bit claims the
/// owner word for holder identities).
const ADAPTIVE_SPINS: u32 = 100;

/// Hard cap on the adaptive spin phase even while the owner's LWP keeps
/// reading as running — bounds the damage from stale hints and from owners
/// blocked in places the run flags cannot see (plain system calls).
const ADAPTIVE_SPIN_CAP: u32 = 4096;

/// A SunOS-style mutual exclusion lock (`mutex_t`).
///
/// Eight bytes, position independent, and valid when zeroed — it may be
/// embedded in a structure, placed in `MAP_SHARED` memory, or stored in a
/// file record (the paper's database example) when initialized with
/// [`SyncType::SHARED`].
///
/// The uncontended paths are a single compare-and-swap in user mode; the
/// kernel is entered only to sleep or to wake a sleeper.
#[repr(C)]
#[derive(Debug, Default)]
pub struct Mutex {
    word: AtomicU32,
    kind: AtomicU32,
    /// Holder identity (zero = untracked/unheld). The `DEBUG` variant
    /// stores the holder's thread id here; otherwise the `ADAPTIVE` variant
    /// stores the holder's LWP hint so waiters can ask the blocking
    /// strategy whether the owner is still on a processor. When both bits
    /// are set, `DEBUG` wins and the adaptive path falls back to a fixed
    /// spin budget.
    owner: AtomicU32,
}

impl Mutex {
    /// Creates a mutex of the given variant, unlocked.
    pub const fn new(kind: SyncType) -> Mutex {
        Mutex {
            word: AtomicU32::new(UNLOCKED),
            kind: AtomicU32::new(kind.0),
            owner: AtomicU32::new(0),
        }
    }

    /// `mutex_init()`: (re)initializes the variable to the given variant.
    ///
    /// Must not be called while any thread holds or waits on the lock.
    pub fn init(&self, kind: SyncType) {
        self.word.store(UNLOCKED, Ordering::Release);
        self.kind.store(kind.0, Ordering::Release);
        self.owner.store(0, Ordering::Release);
    }

    #[inline]
    fn kind(&self) -> SyncType {
        SyncType(self.kind.load(Ordering::Relaxed))
    }

    /// The lock's stat identity: the word address, which is also what the
    /// futex sleeps on and what the trace probes report.
    #[inline]
    fn site(&self) -> usize {
        &self.word as *const _ as usize
    }

    /// `mutex_enter()`: acquires the lock, blocking while it is held.
    ///
    /// # Panics
    ///
    /// The `DEBUG` variant panics on recursive entry by the holder; other
    /// variants deadlock, as on SunOS.
    #[inline]
    pub fn enter(&self) {
        let kind = self.kind();
        if kind.is_debug() {
            self.enter_debug();
            return;
        }
        if self
            .word
            .compare_exchange(UNLOCKED, LOCKED, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            if kind.is_adaptive() {
                self.publish_owner_hint();
            }
            if sunmt_stat::enabled() {
                sunmt_stat::lock::acquired(self.site());
            }
            return;
        }
        self.enter_slow();
    }

    /// Publishes which LWP the new holder runs on ("the information as to
    /// whether the owner of a lock is running is maintained by the kernel";
    /// here the holder volunteers it at acquire time).
    #[inline]
    fn publish_owner_hint(&self) {
        self.owner.store(strategy::lwp_hint(), Ordering::Release);
    }

    #[cold]
    fn enter_debug(&self) {
        let me = strategy::self_id();
        assert_ne!(
            self.owner.load(Ordering::Acquire),
            me,
            "DEBUG mutex: recursive mutex_enter by the holder"
        );
        if self
            .word
            .compare_exchange(UNLOCKED, LOCKED, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            self.enter_slow();
        } else if sunmt_stat::enabled() {
            sunmt_stat::lock::acquired(self.site());
        }
        self.owner.store(me, Ordering::Release);
    }

    #[cold]
    fn enter_slow(&self) {
        let kind = self.kind();
        sunmt_trace::probe!(
            sunmt_trace::Tag::MutexBlock,
            &self.word as *const _ as usize,
            kind.0
        );
        // Block time runs from here to the eventual acquire; `t0 == 0`
        // (stats off) makes every downstream stat call a no-op.
        let t0 = sunmt_stat::lock::slow_begin(self.site());
        if kind.is_spin() {
            // Spin variant: never sleep.
            let mut spins = 0u32;
            loop {
                if self.word.load(Ordering::Relaxed) == UNLOCKED
                    && self
                        .word
                        .compare_exchange_weak(
                            UNLOCKED,
                            LOCKED,
                            Ordering::Acquire,
                            Ordering::Relaxed,
                        )
                        .is_ok()
                {
                    if sunmt_stat::enabled() {
                        sunmt_stat::lock::spun(self.site(), u64::from(spins), true);
                        sunmt_stat::lock::acquired_slow(self.site(), t0);
                    }
                    return;
                }
                core::hint::spin_loop();
                spins += 1;
                if spins % 1024 == 0 {
                    strategy::yield_now();
                }
            }
        }
        if kind.is_adaptive() {
            // Adaptive variant, per the paper: spin while the holder is
            // running on another LWP (it is mid-critical-section and will
            // release soon), sleep as soon as it is not (it cannot make
            // progress, so spinning is pure waste). The holder published
            // its LWP hint in `owner` at acquire time; `DEBUG` claims that
            // word for holder identities, in which case we degrade to a
            // small fixed budget.
            let owner_hinted = !kind.is_debug();
            let mut spins = 0u32;
            loop {
                if self.word.load(Ordering::Relaxed) == UNLOCKED
                    && self
                        .word
                        .compare_exchange_weak(
                            UNLOCKED,
                            LOCKED,
                            Ordering::Acquire,
                            Ordering::Relaxed,
                        )
                        .is_ok()
                {
                    if owner_hinted {
                        self.publish_owner_hint();
                    }
                    sunmt_trace::probe!(
                        sunmt_trace::Tag::MutexSpin,
                        &self.word as *const _ as usize,
                        spins
                    );
                    if sunmt_stat::enabled() {
                        sunmt_stat::lock::spun(self.site(), u64::from(spins), true);
                        sunmt_stat::lock::acquired_slow(self.site(), t0);
                    }
                    return;
                }
                core::hint::spin_loop();
                spins += 1;
                let keep_spinning = if owner_hinted {
                    spins < ADAPTIVE_SPIN_CAP
                        && strategy::lwp_running(self.owner.load(Ordering::Acquire))
                } else {
                    spins < ADAPTIVE_SPINS
                };
                if !keep_spinning {
                    break;
                }
            }
            sunmt_trace::probe!(
                sunmt_trace::Tag::MutexSpin,
                &self.word as *const _ as usize,
                spins
            );
            if sunmt_stat::enabled() {
                sunmt_stat::lock::spun(self.site(), u64::from(spins), false);
            }
        }
        // Sleep path: announce contention so the releaser knows to wake us.
        let shared = kind.is_shared();
        while self.word.swap(CONTENDED, Ordering::Acquire) != UNLOCKED {
            if sunmt_stat::enabled() {
                sunmt_stat::lock::parked(self.site());
            }
            strategy::park(&self.word, CONTENDED, shared);
        }
        if kind.is_adaptive() && !kind.is_debug() {
            self.publish_owner_hint();
        }
        if sunmt_stat::enabled() {
            sunmt_stat::lock::acquired_slow(self.site(), t0);
        }
    }

    /// Prepares this mutex as a wait-morphing target and returns its lock
    /// word, or `None` when morphing is not applicable.
    ///
    /// On success the word has been marked `CONTENDED`, so the holder's
    /// eventual `mutex_exit` is guaranteed to wake one of the waiters a
    /// broadcast requeues onto it — that handoff chain is what keeps
    /// morphed waiters live. Returns `None` when:
    ///
    /// * the variant is a spin lock (its waiters never sleep on the word,
    ///   so there is no futex queue to morph onto),
    /// * the mutex's scope disagrees with the condvar's (`shared`) — the
    ///   kernel keys private and shared futex queues differently, so a
    ///   cross-scope requeue would strand waiters, or
    /// * the mutex is currently unlocked — no `mutex_exit` is coming, so
    ///   requeued waiters could sleep forever; the caller must fall back
    ///   to waking everyone.
    pub(crate) fn requeue_target(&self, shared: bool) -> Option<&AtomicU32> {
        let kind = self.kind();
        if kind.is_spin() || kind.is_shared() != shared {
            return None;
        }
        let mut cur = self.word.load(Ordering::Relaxed);
        loop {
            match cur {
                UNLOCKED => return None,
                CONTENDED => return Some(&self.word),
                _ => match self.word.compare_exchange_weak(
                    cur,
                    CONTENDED,
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => return Some(&self.word),
                    Err(v) => cur = v,
                },
            }
        }
    }

    /// Reacquires the lock after a condition-variable wait.
    ///
    /// Unlike `enter`, the sleep path always leaves the word `CONTENDED`:
    /// a waiter coming back from a wait may have siblings that a broadcast
    /// morphed onto this mutex, and only a `CONTENDED` release wakes the
    /// next one. Taking the lock as `LOCKED` here could leave the rest of
    /// the morphed chain asleep forever.
    pub(crate) fn enter_cv(&self) {
        let kind = self.kind();
        if kind.is_spin() {
            // Spin waiters are never morphed; the plain path is correct.
            self.enter();
            return;
        }
        if self
            .word
            .compare_exchange(UNLOCKED, CONTENDED, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            let t0 = sunmt_stat::lock::slow_begin(self.site());
            let shared = kind.is_shared();
            while self.word.swap(CONTENDED, Ordering::Acquire) != UNLOCKED {
                if sunmt_stat::enabled() {
                    sunmt_stat::lock::parked(self.site());
                }
                strategy::park(&self.word, CONTENDED, shared);
            }
            if sunmt_stat::enabled() {
                sunmt_stat::lock::acquired_slow(self.site(), t0);
            }
        } else if sunmt_stat::enabled() {
            sunmt_stat::lock::acquired(self.site());
        }
        if kind.is_debug() {
            self.owner.store(strategy::self_id(), Ordering::Release);
        } else if kind.is_adaptive() {
            self.publish_owner_hint();
        }
    }

    /// `mutex_tryenter()`: acquires the lock only if that does not require
    /// blocking; returns whether it was acquired.
    ///
    /// "Can be used to avoid deadlock in operations that would normally
    /// violate the lock hierarchy."
    #[inline]
    pub fn try_enter(&self) -> bool {
        let ok = self
            .word
            .compare_exchange(UNLOCKED, LOCKED, Ordering::Acquire, Ordering::Relaxed)
            .is_ok();
        if ok {
            let kind = self.kind();
            if kind.is_debug() {
                self.owner.store(strategy::self_id(), Ordering::Release);
            } else if kind.is_adaptive() {
                self.publish_owner_hint();
            }
            if sunmt_stat::enabled() {
                sunmt_stat::lock::acquired(self.site());
            }
        }
        ok
    }

    /// `mutex_exit()`: releases the lock, waking one waiter if any.
    ///
    /// Releasing a mutex the caller does not hold is a logic error (the
    /// locks are "strictly bracketing"); debug builds detect release of an
    /// unlocked mutex, and the `DEBUG` variant panics on release by a
    /// non-holder in any build.
    #[inline]
    pub fn exit(&self) {
        // Close the hold interval while still the holder (the site's
        // hold clock is single-writer only under the lock's exclusion).
        if sunmt_stat::enabled() {
            sunmt_stat::lock::released(self.site());
        }
        let kind = self.kind();
        if kind.is_debug() {
            let me = strategy::self_id();
            assert_eq!(
                self.owner.load(Ordering::Acquire),
                me,
                "DEBUG mutex: mutex_exit by a non-holder"
            );
            self.owner.store(0, Ordering::Release);
        } else if kind.is_adaptive() {
            // Retract the hint *before* releasing the word: a spinner must
            // never keep spinning on our hint after the next holder has
            // taken over. A momentary zero hint reads as "running", which
            // is the conservative direction.
            self.owner.store(0, Ordering::Release);
        }
        let prev = self.word.swap(UNLOCKED, Ordering::Release);
        debug_assert_ne!(prev, UNLOCKED, "mutex_exit of an unheld mutex");
        if prev == CONTENDED {
            strategy::unpark(&self.word, 1, kind.is_shared());
        }
    }

    /// Runs `f` with the lock held (RAII convenience over enter/exit).
    pub fn with<R>(&self, f: impl FnOnce() -> R) -> R {
        self.enter();
        let guard = ExitOnDrop(self);
        let r = f();
        drop(guard);
        r
    }

    /// Whether the lock is currently held by someone (a racy snapshot, for
    /// assertions and tests only).
    pub fn is_locked(&self) -> bool {
        self.word.load(Ordering::Relaxed) != UNLOCKED
    }
}

struct ExitOnDrop<'a>(&'a Mutex);

impl Drop for ExitOnDrop<'_> {
    fn drop(&mut self) {
        self.0.exit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn zeroed_bytes_are_a_valid_unlocked_mutex() {
        // The paper's "allocated as zero may be used immediately" rule.
        let zeroed = [0u8; core::mem::size_of::<Mutex>()];
        // SAFETY: Mutex is repr(C) over two AtomicU32s; all-zero is the
        // documented valid default state.
        let m: &Mutex = unsafe { &*(zeroed.as_ptr() as *const Mutex) };
        assert!(!m.is_locked());
        assert!(m.try_enter());
        assert!(!m.try_enter());
        m.exit();
    }

    #[test]
    fn enter_exit_round_trip() {
        let m = Mutex::new(SyncType::DEFAULT);
        m.enter();
        assert!(m.is_locked());
        m.exit();
        assert!(!m.is_locked());
    }

    #[test]
    fn try_enter_fails_when_held() {
        let m = Mutex::new(SyncType::DEFAULT);
        m.enter();
        assert!(!m.try_enter());
        m.exit();
        assert!(m.try_enter());
        m.exit();
    }

    fn hammer(kind: SyncType) {
        const LWPS: usize = 4;
        const ITERS: usize = 10_000;
        struct Shared(std::cell::UnsafeCell<usize>);
        // SAFETY: The cell is only accessed under the mutex being tested.
        unsafe impl Sync for Shared {}
        let m = Arc::new(Mutex::new(kind));
        let counter = Arc::new(Shared(std::cell::UnsafeCell::new(0usize)));
        let mut handles = Vec::new();
        for _ in 0..LWPS {
            let m = Arc::clone(&m);
            let c = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                for _ in 0..ITERS {
                    m.enter();
                    // SAFETY: Exclusive by mutual exclusion.
                    unsafe { *c.0.get() += 1 };
                    m.exit();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // SAFETY: All writers joined.
        assert_eq!(unsafe { *counter.0.get() }, LWPS * ITERS);
    }

    #[test]
    fn mutual_exclusion_default_variant() {
        hammer(SyncType::DEFAULT);
    }

    #[test]
    fn mutual_exclusion_spin_variant() {
        hammer(SyncType::SPIN);
    }

    #[test]
    fn mutual_exclusion_adaptive_variant() {
        hammer(SyncType::ADAPTIVE);
    }

    #[test]
    fn with_releases_on_exit() {
        let m = Mutex::new(SyncType::DEFAULT);
        let v = m.with(|| 41) + 1;
        assert_eq!(v, 42);
        assert!(!m.is_locked());
    }

    #[test]
    fn debug_variant_allows_correct_bracketing() {
        let m = Mutex::new(SyncType::DEBUG);
        m.enter();
        m.exit();
        assert!(m.try_enter());
        m.exit();
        hammer(SyncType::DEBUG);
    }

    #[test]
    #[should_panic(expected = "recursive mutex_enter")]
    fn debug_variant_panics_on_recursive_enter() {
        let m = Mutex::new(SyncType::DEBUG);
        m.enter();
        m.enter();
    }

    #[test]
    #[should_panic(expected = "mutex_exit by a non-holder")]
    fn debug_variant_panics_on_foreign_exit() {
        let m = Arc::new(Mutex::new(SyncType::DEBUG));
        m.enter();
        let m2 = Arc::clone(&m);
        // A different LWP releasing someone else's lock is caught.
        let result = std::thread::spawn(move || m2.exit()).join();
        // Re-panic in this thread so should_panic observes it.
        if let Err(p) = result {
            std::panic::resume_unwind(p);
        }
    }
}
