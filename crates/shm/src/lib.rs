//! Shared memory: synchronization variables in files.
//!
//! "Synchronization variables can also be placed in files and have lifetimes
//! beyond that of the creating process. For example, a file can be created
//! that contains data base records. Each record can contain a mutual
//! exclusion lock variable that controls access to the associated record. A
//! process can map the file and a thread within it can obtain the lock
//! associated with a particular record ... if any thread within any process
//! mapping the file attempts to acquire the lock that thread will block
//! until the lock is released."
//!
//! [`SharedFile`] maps a file `MAP_SHARED`; [`SharedFile::sync_var`] places
//! a `sunmt-sync` variable at an offset inside it. Because every variable in
//! `sunmt-sync` is `repr(C)`, position independent, and valid when zeroed, a
//! freshly created (zero-filled) file is a valid array of unlocked
//! default-variant variables — processes mapping the file at different
//! virtual addresses synchronize through them with the `SyncType::SHARED`
//! variant.

#![deny(missing_docs)]

pub mod ipc;

use std::fs::{File, OpenOptions};
use std::io;
use std::os::fd::AsRawFd;
use std::path::{Path, PathBuf};

use sunmt_sys::mem;

/// A file mapped shared into this process.
///
/// Dropping unmaps (the file itself persists — lock lifetime "beyond that of
/// the creating process" is the point).
pub struct SharedFile {
    map: *mut u8,
    len: usize,
    path: PathBuf,
    _file: File,
}

// SAFETY: The mapping is valid process-wide; concurrent access is governed
// by the synchronization variables placed inside it.
unsafe impl Send for SharedFile {}
// SAFETY: As above; `&SharedFile` only hands out raw pointers and
// shared references to Sync types.
unsafe impl Sync for SharedFile {}

impl SharedFile {
    /// Creates (or truncates) `path` as `len` zero bytes and maps it shared.
    pub fn create(path: impl AsRef<Path>, len: usize) -> io::Result<SharedFile> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        file.set_len(len as u64)?;
        Self::map(file, len, path)
    }

    /// Opens and maps an existing shared file created by [`Self::create`]
    /// (possibly by another process).
    pub fn open(path: impl AsRef<Path>) -> io::Result<SharedFile> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().read(true).write(true).open(&path)?;
        let len = file.metadata()?.len() as usize;
        Self::map(file, len, path)
    }

    fn map(file: File, len: usize, path: PathBuf) -> io::Result<SharedFile> {
        if len == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "cannot map an empty file",
            ));
        }
        let map = mem::map_shared_file(file.as_raw_fd(), 0, len)
            .map_err(|e| io::Error::other(format!("mmap failed: {e}")))?;
        Ok(SharedFile {
            map,
            len,
            path,
            _file: file,
        })
    }

    /// The mapping's length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mapping is empty (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The mapped file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Base address of the mapping.
    pub fn as_ptr(&self) -> *mut u8 {
        self.map
    }

    /// A shared reference to a synchronization variable (or any other
    /// zero-valid `repr(C)` value) at byte `offset` inside the mapping.
    ///
    /// # Safety
    ///
    /// * `offset + size_of::<T>()` must be within the mapping and `offset`
    ///   must satisfy `T`'s alignment.
    /// * `T` must be valid for any bit pattern the file may contain — the
    ///   `sunmt-sync` variable types (atomics-only, zero-valid) qualify.
    /// * All processes mapping the file must agree on the layout, and any
    ///   `T` whose operations block must use its `SHARED` variant.
    pub unsafe fn sync_var<T>(&self, offset: usize) -> &T {
        assert!(
            offset + core::mem::size_of::<T>() <= self.len,
            "offset {offset}+{} exceeds mapping of {} bytes",
            core::mem::size_of::<T>(),
            self.len
        );
        assert_eq!(
            (self.map as usize + offset) % core::mem::align_of::<T>(),
            0,
            "offset {offset} misaligned for {}",
            core::any::type_name::<T>()
        );
        // SAFETY: In bounds and aligned (checked above); the caller
        // guarantees bit-pattern validity and cross-process layout agreement.
        unsafe { &*(self.map.add(offset) as *const T) }
    }

    /// Copies `bytes` into the mapping at `offset` (setup helper for tests
    /// and examples; not synchronized).
    pub fn write_bytes(&self, offset: usize, bytes: &[u8]) {
        assert!(offset + bytes.len() <= self.len);
        // SAFETY: In-bounds; the mapping is writable. Races with concurrent
        // readers are the caller's responsibility, as documented.
        unsafe {
            core::ptr::copy_nonoverlapping(bytes.as_ptr(), self.map.add(offset), bytes.len());
        }
    }

    /// Reads `len` bytes from the mapping at `offset`.
    pub fn read_bytes(&self, offset: usize, len: usize) -> Vec<u8> {
        assert!(offset + len <= self.len);
        let mut out = vec![0u8; len];
        // SAFETY: In-bounds read of the live mapping.
        unsafe {
            core::ptr::copy_nonoverlapping(self.map.add(offset), out.as_mut_ptr(), len);
        }
        out
    }
}

impl Drop for SharedFile {
    fn drop(&mut self) {
        // SAFETY: `map..map+len` is exactly the mapping created in `map()`;
        // Drop proves no `sync_var` references remain (they borrow self).
        let _ = unsafe { mem::unmap(self.map, self.len) };
    }
}

impl core::fmt::Debug for SharedFile {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SharedFile")
            .field("path", &self.path)
            .field("len", &self.len)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sunmt_sync::{Mutex, Sema, SyncType};

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("sunmt-shm-{}-{name}", std::process::id()))
    }

    #[test]
    fn create_open_share_within_process() {
        let path = tmp("dual");
        let a = SharedFile::create(&path, 4096).expect("create");
        let b = SharedFile::open(&path).expect("open");
        a.write_bytes(100, b"hello");
        assert_eq!(b.read_bytes(100, 5), b"hello");
        drop(a);
        drop(b);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn zero_filled_file_is_a_valid_mutex() {
        let path = tmp("mutex");
        let f = SharedFile::create(&path, 4096).expect("create");
        // SAFETY: Offset 0 is aligned and in-bounds; Mutex is zero-valid.
        let m: &Mutex = unsafe { f.sync_var(0) };
        m.init(SyncType::SHARED);
        m.enter();
        assert!(m.is_locked());
        m.exit();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn two_mappings_same_variable() {
        // Two mappings of one file within one process: distinct virtual
        // addresses, one lock — a miniature of the paper's Figure 1.
        let path = tmp("twomap");
        let a = SharedFile::create(&path, 4096).expect("create");
        let b = SharedFile::open(&path).expect("open");
        assert_ne!(a.as_ptr(), b.as_ptr());
        // SAFETY: Aligned, in-bounds, zero-valid.
        let sa: &Sema = unsafe { a.sync_var(64) };
        // SAFETY: As above.
        let sb: &Sema = unsafe { b.sync_var(64) };
        sa.init(0, SyncType::SHARED);
        sb.v();
        assert!(sa.try_p(), "the V through mapping B must be visible via A");
        assert!(!sb.try_p());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sync_var_rejects_out_of_bounds() {
        let path = tmp("oob");
        let f = SharedFile::create(&path, 64).expect("create");
        let r = std::panic::catch_unwind(|| {
            // SAFETY: Bounds are checked before any dereference; this call
            // panics and never creates the reference.
            let _: &Mutex = unsafe { f.sync_var(60) };
        });
        assert!(r.is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_file_is_rejected() {
        let path = tmp("empty");
        assert!(SharedFile::create(&path, 0).is_err());
        let _ = std::fs::remove_file(&path);
    }
}
