//! Cooperating-process helpers for cross-process experiments.
//!
//! The paper demonstrates "threads in different processes" synchronizing
//! "via synchronization variables placed in shared memory" (Figure 1) and
//! measures it in Figure 6 ("Cross process thread sync"). We cannot `fork()`
//! a multithreaded Rust process safely without libc, so cooperating
//! processes are created by re-executing the current binary with a role
//! argument — the child opens the same [`crate::SharedFile`] and runs its
//! half of the protocol. (Full `fork`/`fork1` semantics are reproduced in
//! `sunmt-simkernel`.)

use std::io;
use std::path::Path;
use std::process::{Child, Command};

/// Environment variable carrying the child's role.
pub const ROLE_ENV: &str = "SUNMT_CHILD_ROLE";

/// Environment variable carrying the shared file's path.
pub const PATH_ENV: &str = "SUNMT_SHARED_PATH";

/// Spawns the current executable as a cooperating child process.
///
/// The child sees `role` in the [`ROLE_ENV`] environment variable and
/// `shared_path` both in [`PATH_ENV`] and as its first argument. Binaries
/// hosting cross-process experiments call [`child_role`] first thing in
/// `main` and branch to the child protocol when it returns `Some`.
pub fn spawn_cooperating(role: &str, shared_path: &Path, extra_args: &[&str]) -> io::Result<Child> {
    let exe = std::env::current_exe()?;
    Command::new(exe)
        .env(ROLE_ENV, role)
        .env(PATH_ENV, shared_path)
        .arg(shared_path)
        .args(extra_args)
        .spawn()
}

/// Like [`spawn_cooperating`] but passes the path only through the
/// environment — required when the current executable is a *test binary*,
/// whose harness would interpret a positional argument as a test-name
/// filter and skip the child protocol entirely.
pub fn spawn_cooperating_env(role: &str, shared_path: &Path) -> io::Result<Child> {
    let exe = std::env::current_exe()?;
    Command::new(exe)
        .env(ROLE_ENV, role)
        .env(PATH_ENV, shared_path)
        .spawn()
}

/// Returns the role this process was spawned with, if it is a cooperating
/// child.
pub fn child_role() -> Option<String> {
    std::env::var(ROLE_ENV).ok()
}

/// The shared path passed by the parent (environment first, then argv for
/// plain binaries).
pub fn child_shared_path() -> Option<std::path::PathBuf> {
    child_role()?;
    if let Ok(p) = std::env::var(PATH_ENV) {
        return Some(p.into());
    }
    std::env::args_os().nth(1).map(Into::into)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn role_env_round_trips_name() {
        assert_eq!(ROLE_ENV, "SUNMT_CHILD_ROLE");
        // This test process was not spawned as a child.
        if std::env::var(ROLE_ENV).is_err() {
            assert_eq!(child_role(), None);
            assert_eq!(child_shared_path(), None);
        }
    }
}
