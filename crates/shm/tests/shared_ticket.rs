//! Cross-process ticket lock: the `SYNC_SHARED | TICKET` variant's whole
//! state is one packed `AtomicU32` (serving half / next-ticket half) in
//! the mutex word, so placing it in a `MAP_SHARED` file gives two *real*
//! processes a FIFO lock — unlike MCS, whose queue nodes live in
//! per-process statics and cannot cross an address-space boundary.
//!
//! The child protocol mirrors `tests/cross_process.rs`: this test binary
//! re-executes itself with a role in the environment, and the child
//! branch runs before anything else.

use std::sync::atomic::{AtomicU64, Ordering};

use sunmt_shm::{ipc, SharedFile};
use sunmt_sync::{Mutex, Sema, SyncType};

const ITERS: u64 = 10_000;

// Layout inside the shared file (all offsets 64-byte aligned so the hot
// words sit in separate cache lines).
const OFF_MUTEX: usize = 0;
const OFF_COUNTER: usize = 64;
const OFF_DONE: usize = 128;

#[test]
fn cross_process_ticket_lock_excludes_and_stays_fifo() {
    if let Some(role) = ipc::child_role() {
        if role != "shm-ticket" {
            return; // Another test's child re-execution; not ours.
        }
        let path = ipc::child_shared_path().expect("child shared path");
        let f = SharedFile::open(path).expect("child open");
        // SAFETY: Parent laid out (Mutex, AtomicU64, Sema) at 0/64/128
        // and initialized them before spawning us.
        let m: &Mutex = unsafe { f.sync_var(OFF_MUTEX) };
        let counter: &AtomicU64 = unsafe { f.sync_var(OFF_COUNTER) };
        let done: &Sema = unsafe { f.sync_var(OFF_DONE) };
        for _ in 0..ITERS {
            m.enter();
            // Non-atomic RMW under the lock: only mutual exclusion
            // between the two processes keeps the final sum exact.
            let v = counter.load(Ordering::Relaxed);
            counter.store(v + 1, Ordering::Relaxed);
            m.exit();
        }
        done.v();
        std::process::exit(0);
    }

    let path = std::env::temp_dir().join(format!("sunmt-shm-ticket-{}", std::process::id()));
    let f = SharedFile::create(&path, 4096).expect("create");
    // SAFETY: Aligned, in-bounds, zero-valid; initialized below before
    // the child can observe them.
    let m: &Mutex = unsafe { f.sync_var(OFF_MUTEX) };
    let counter: &AtomicU64 = unsafe { f.sync_var(OFF_COUNTER) };
    let done: &Sema = unsafe { f.sync_var(OFF_DONE) };
    m.init(SyncType::TICKET | SyncType::SHARED);
    done.init(0, SyncType::SHARED);

    let mut child = ipc::spawn_cooperating_env("shm-ticket", &path).expect("spawn");
    for _ in 0..ITERS {
        m.enter();
        let v = counter.load(Ordering::Relaxed);
        counter.store(v + 1, Ordering::Relaxed);
        m.exit();
    }
    done.p(); // Child finished its half.
    assert_eq!(counter.load(Ordering::Relaxed), 2 * ITERS);
    // The lock must be fully released: the word's serving and next
    // halves agree again, so one more uncontended round-trip succeeds.
    assert!(m.try_enter(), "ticket word left unbalanced");
    m.exit();
    let status = child.wait().expect("child wait");
    assert!(status.success(), "child exited with {status:?}");
    drop(f);
    let _ = std::fs::remove_file(&path);
}
