//! FIG4 conformance: every function in the paper's Figure 4 exists under
//! its original name and behaves as specified. This test is the index the
//! DESIGN.md experiment table points at for Figure 4.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use sunos_mt::sync::{Condvar, Mutex, RwLock, RwType, Sema, SyncType};
use sunos_mt::threads::api::*;
use sunos_mt::threads::signals::{self, MaskHow};
use sunos_mt::threads::{CreateFlags, ThreadId};

#[test]
fn thread_create_and_thread_wait() {
    let ran = Arc::new(AtomicU32::new(0));
    let r = Arc::clone(&ran);
    let id = thread_create(CreateFlags::WAIT, move || {
        r.store(1, Ordering::SeqCst);
    })
    .expect("thread_create");
    assert_eq!(thread_wait(Some(id)).expect("thread_wait"), id);
    assert_eq!(ran.load(Ordering::SeqCst), 1);
}

#[test]
fn thread_create_sized_stack() {
    let id = thread_create_sized(256 * 1024, CreateFlags::WAIT, || {
        // Use a chunk of the larger stack.
        let big = [0u8; 64 * 1024];
        std::hint::black_box(&big);
    })
    .expect("thread_create_sized");
    thread_wait(Some(id)).expect("thread_wait");
}

#[test]
fn thread_create_on_programmer_stack() {
    // "If stack_addr is not NULL, stack_size bytes of memory starting at
    // stack_addr are used for the thread stack." Reclaimed only after
    // thread_wait returns.
    let mut region = vec![0u8; 128 * 1024];
    let done = Arc::new(AtomicU32::new(0));
    let d = Arc::clone(&done);
    // SAFETY: `region` outlives the thread (we thread_wait before drop) and
    // is used by nothing else.
    let id = unsafe {
        thread_create_on_stack(
            region.as_mut_ptr(),
            region.len(),
            CreateFlags::WAIT,
            move || {
                d.store(7, Ordering::SeqCst);
            },
        )
    }
    .expect("thread_create_on_stack");
    thread_wait(Some(id)).expect("thread_wait");
    assert_eq!(done.load(Ordering::SeqCst), 7);
    drop(region); // Now legal to reclaim.
}

#[test]
fn thread_get_id_is_stable_and_unique() {
    let me = thread_get_id();
    assert_eq!(thread_get_id(), me);
    let other = Arc::new(AtomicU32::new(0));
    let o = Arc::clone(&other);
    let id = thread_create(CreateFlags::WAIT, move || {
        o.store(thread_get_id().0, Ordering::SeqCst);
    })
    .expect("thread_create");
    thread_wait(Some(id)).expect("thread_wait");
    assert_ne!(other.load(Ordering::SeqCst), me.0);
}

#[test]
fn thread_exit_terminates_early() {
    let after = Arc::new(AtomicU32::new(0));
    let a = Arc::clone(&after);
    let id = thread_create(CreateFlags::WAIT, move || {
        if a.load(Ordering::SeqCst) == 0 {
            thread_exit();
        }
        unreachable!("code after thread_exit ran");
    })
    .expect("thread_create");
    thread_wait(Some(id)).expect("thread_wait");
    // "The exit status of a thread is always zero" — nothing to check
    // beyond clean reaping.
}

#[test]
fn thread_stop_and_thread_continue() {
    let progress = Arc::new(AtomicU32::new(0));
    let p = Arc::clone(&progress);
    let id = thread_create(CreateFlags::WAIT | CreateFlags::STOP, move || {
        p.store(1, Ordering::SeqCst);
    })
    .expect("thread_create");
    std::thread::sleep(std::time::Duration::from_millis(20));
    assert_eq!(progress.load(Ordering::SeqCst), 0);
    thread_continue(id).expect("thread_continue");
    thread_wait(Some(id)).expect("thread_wait");
    assert_eq!(progress.load(Ordering::SeqCst), 1);
}

#[test]
fn thread_priority_returns_old_value() {
    let old = thread_priority(None, 7).expect("thread_priority");
    assert!(old >= 0);
    assert_eq!(thread_priority(None, old).expect("restore"), 7);
}

#[test]
fn thread_priority_demotion_kicks_a_running_thread() {
    // "Increasing the specified priority gives increasing scheduling
    // priority" — and a *demotion* of a running unbound thread must take
    // effect within one tick, not at its next voluntary reschedule:
    // `thread_priority` raises the target LWP's preempt flag, and the
    // target consumes it (decaying and re-running the dispatch check) at
    // its next safepoint even with no tick driver configured.
    thread_setconcurrency(1).expect("pin the pool at 1 LWP");
    let old_pri = thread_priority(None, 10).expect("raise creator priority");
    let before_decays = sunos_mt::threads::stats().decays;

    let stop = Arc::new(AtomicU32::new(0));
    let hog_running = Arc::new(AtomicU32::new(0));
    let (s, hr) = (Arc::clone(&stop), Arc::clone(&hog_running));
    let hog = thread_create(CreateFlags::WAIT, move || {
        while s.load(Ordering::SeqCst) == 0 {
            hr.store(1, Ordering::SeqCst);
            sunos_mt::threads::api::thread_preempt_point();
        }
    })
    .expect("spawn hog");
    while hog_running.load(Ordering::SeqCst) == 0 {
        std::hint::spin_loop();
    }

    // A same-priority waiter injected behind the spinning hog, then the
    // demotion that must let it through.
    let ran = Arc::new(AtomicU32::new(0));
    let r = Arc::clone(&ran);
    let waiter = thread_create(CreateFlags::WAIT, move || {
        r.store(1, Ordering::SeqCst);
    })
    .expect("spawn waiter");
    thread_priority(Some(hog), 0).expect("demote the hog");

    // The kicked flag must be consumed (a decay recorded) and the waiter
    // dispatched, both well within the bounded window.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while (ran.load(Ordering::SeqCst) == 0 || sunos_mt::threads::stats().decays == before_decays)
        && std::time::Instant::now() < deadline
    {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    stop.store(1, Ordering::SeqCst);
    thread_wait(Some(waiter)).expect("wait waiter");
    thread_wait(Some(hog)).expect("wait hog");
    assert_eq!(
        ran.load(Ordering::SeqCst),
        1,
        "waiter starved behind the demoted hog"
    );
    assert!(
        sunos_mt::threads::stats().decays > before_decays,
        "the demotion never raised the running hog's preempt flag"
    );
    thread_priority(None, old_pri).expect("restore creator priority");
    thread_setconcurrency(0).expect("unpin the pool");
}

#[test]
fn thread_setconcurrency_accepts_zero_and_n() {
    thread_setconcurrency(2).expect("explicit");
    thread_setconcurrency(0).expect("automatic");
}

#[test]
fn thread_sigsetmask_and_thread_kill() {
    let hits = Arc::new(AtomicU32::new(0));
    let h = Arc::clone(&hits);
    signals::set_disposition(
        signals::sig::SIGINT,
        signals::Disposition::Handler(Arc::new(move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        })),
    )
    .expect("set handler");
    let old = thread_sigsetmask(MaskHow::Block, 1 << signals::sig::SIGINT);
    thread_kill(thread_get_id(), signals::sig::SIGINT).expect("thread_kill");
    assert_eq!(hits.load(Ordering::SeqCst), 0, "masked signal must pend");
    thread_sigsetmask(MaskHow::Unblock, 1 << signals::sig::SIGINT);
    assert_eq!(hits.load(Ordering::SeqCst), 1, "unmasking delivers");
    thread_sigsetmask(MaskHow::SetMask, old);
}

#[test]
fn thread_kill_unknown_thread_errors() {
    assert!(thread_kill(ThreadId(u32::MAX - 17), signals::sig::SIGINT).is_err());
}

#[test]
fn mutex_functions_by_paper_name() {
    let m = Mutex::new(SyncType::DEFAULT);
    mutex_init(&m, SyncType::DEFAULT);
    mutex_enter(&m);
    assert!(!mutex_tryenter(&m));
    mutex_exit(&m);
    assert!(mutex_tryenter(&m));
    mutex_exit(&m);
}

#[test]
fn condvar_functions_by_paper_name() {
    let m = Mutex::new(SyncType::DEFAULT);
    let cv = Condvar::new(SyncType::DEFAULT);
    cv_init(&cv, SyncType::DEFAULT);
    // The paper's monitor idiom with an already-true predicate.
    let ready = std::sync::atomic::AtomicBool::new(true);
    mutex_enter(&m);
    while !ready.load(std::sync::atomic::Ordering::Relaxed) {
        cv_wait(&cv, &m);
    }
    mutex_exit(&m);
    cv_signal(&cv);
    cv_broadcast(&cv);
}

#[test]
fn sema_functions_by_paper_name() {
    let s = Sema::new(0, SyncType::DEFAULT);
    sema_init(&s, 2, SyncType::DEFAULT);
    sema_p(&s);
    assert!(sema_tryp(&s));
    assert!(!sema_tryp(&s));
    sema_v(&s);
    sema_p(&s);
}

#[test]
fn rwlock_functions_by_paper_name() {
    let l = RwLock::new(SyncType::DEFAULT);
    rw_init(&l, SyncType::DEFAULT);
    rw_enter(&l, RwType::Reader);
    assert!(rw_tryenter(&l, RwType::Reader));
    rw_exit(&l);
    assert!(rw_tryupgrade(&l));
    rw_downgrade(&l);
    rw_exit(&l);
    rw_enter(&l, RwType::Writer);
    assert!(!rw_tryenter(&l, RwType::Reader));
    rw_exit(&l);
}

#[test]
fn waitid_style_any_wait() {
    // "P_THREAD_ALL: waitid() waits for any thread marked THREAD_WAIT."
    let id = thread_create(CreateFlags::WAIT, || {}).expect("thread_create");
    let got = thread_wait(None).expect("thread_wait(NULL)");
    // Some WAIT thread was reaped (possibly ours, possibly a concurrent
    // test's); the returned id must be valid-but-now-unusable.
    assert!(
        thread_wait(Some(got)).is_err(),
        "reaped id must be unusable"
    );
    let _ = id;
}

#[test]
fn cv_timedwait_by_paper_name() {
    // Kernel-futex path: the caller here is a bound (adopted host) thread.
    let m = Mutex::new(SyncType::DEFAULT);
    let cv = Condvar::new(SyncType::DEFAULT);
    let t0 = std::time::Instant::now();
    mutex_enter(&m);
    let signaled = cv_timedwait(&cv, &m, std::time::Duration::from_millis(30));
    mutex_exit(&m);
    assert!(
        !signaled,
        "nobody signaled; cv_timedwait must report timeout"
    );
    assert!(
        t0.elapsed() >= std::time::Duration::from_millis(25),
        "returned after {:?}",
        t0.elapsed()
    );

    // User-level sleep-queue path: an *unbound* thread times out on the
    // timer LWP, then is signaled on a second wait and reports it.
    let state = Arc::new((
        Mutex::new(SyncType::DEFAULT),
        Condvar::new(SyncType::DEFAULT),
        AtomicU32::new(0),
    ));
    let s = Arc::clone(&state);
    let id = thread_create(CreateFlags::WAIT, move || {
        let (m, cv, outcome) = &*s;
        mutex_enter(m);
        let first = cv_timedwait(cv, m, std::time::Duration::from_millis(20));
        outcome.store(1 + u32::from(first), Ordering::SeqCst);
        let second = cv_timedwait(cv, m, std::time::Duration::from_secs(10));
        mutex_exit(m);
        outcome.store(10 + u32::from(second), Ordering::SeqCst);
    })
    .expect("thread_create");
    // Wait until the thread has recorded its (un-signaled) timeout...
    while state.2.load(Ordering::SeqCst) != 1 {
        std::thread::yield_now();
    }
    // ...then signal its second, long wait.
    mutex_enter(&state.0);
    cv_signal(&state.1);
    mutex_exit(&state.0);
    thread_wait(Some(id)).expect("thread_wait");
    assert_eq!(
        state.2.load(Ordering::SeqCst),
        11,
        "the signaled cv_timedwait must return true"
    );
}

#[test]
fn sema_timedp_by_paper_name() {
    // Timeout on an empty semaphore (bound caller, kernel-futex path)...
    let s = Sema::new(0, SyncType::DEFAULT);
    assert!(!sema_timedp(&s, std::time::Duration::from_millis(20)));
    // ...must not have consumed anything: a V still satisfies a P.
    sema_v(&s);
    assert!(sema_timedp(&s, std::time::Duration::from_millis(20)));

    // Unbound caller: timeout comes from the sleep-queue timer; a V from
    // outside wakes the second, long wait.
    let pair = Arc::new((Sema::new(0, SyncType::DEFAULT), AtomicU32::new(0)));
    let p = Arc::clone(&pair);
    let id = thread_create(CreateFlags::WAIT, move || {
        let (sem, outcome) = &*p;
        let first = sema_timedp(sem, std::time::Duration::from_millis(20));
        outcome.store(1 + u32::from(first), Ordering::SeqCst);
        let second = sema_timedp(sem, std::time::Duration::from_secs(10));
        outcome.store(10 + u32::from(second), Ordering::SeqCst);
    })
    .expect("thread_create");
    while pair.1.load(Ordering::SeqCst) != 1 {
        std::thread::yield_now();
    }
    sema_v(&pair.0);
    thread_wait(Some(id)).expect("thread_wait");
    assert_eq!(
        pair.1.load(Ordering::SeqCst),
        11,
        "the V-satisfied sema_timedp must return true"
    );
}
