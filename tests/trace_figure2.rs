//! Tracing end-to-end: the paper's Figure-2 dispatch cycle, observed.
//!
//! Three unbound threads multiplexed on a single pool LWP must produce the
//! Figure-2 scheduling pattern — dispatch, run, switch out, dispatch the
//! next — and the tracer must capture it coherently: timestamps merge
//! non-decreasing, dispatch/switch-out events alternate per LWP, the
//! aggregate counters agree with the timeline, and the Chrome export is
//! well-formed.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use sunos_mt::threads::{self, CreateFlags, ThreadBuilder};
use sunos_mt::trace::{self, Tag};

const THREADS: usize = 3;
const YIELDS: usize = 10;

#[test]
fn figure2_dispatch_cycle_is_observable() {
    // Pin the pool to one LWP so every thread switch is a user-level
    // dispatch on the same virtual CPU, as on the paper's uniprocessor.
    threads::set_concurrency(1).expect("setconcurrency");
    trace::enable();

    let turns = Arc::new(AtomicUsize::new(0));
    let mut ids = Vec::new();
    for _ in 0..THREADS {
        let t = Arc::clone(&turns);
        ids.push(
            ThreadBuilder::new()
                .flags(CreateFlags::WAIT)
                .spawn(move || {
                    for _ in 0..YIELDS {
                        t.fetch_add(1, Ordering::Relaxed);
                        threads::yield_now();
                    }
                })
                .expect("spawn"),
        );
    }
    let spawned: Vec<u32> = ids.iter().map(|id| id.0).collect();
    for id in ids {
        threads::wait(Some(id)).expect("wait");
    }
    trace::disable();
    assert_eq!(turns.load(Ordering::Relaxed), THREADS * YIELDS);

    let events = trace::drain();
    assert!(!events.is_empty(), "tracing captured nothing");

    // The merged timeline is non-decreasing in time.
    for w in events.windows(2) {
        assert!(
            w[1].ts_ns >= w[0].ts_ns,
            "merge out of order: {:?} after {:?}",
            w[1],
            w[0]
        );
    }

    // Figure-2 cycle: on any one LWP, dispatches and switch-outs strictly
    // alternate (a thread must leave the LWP before the next one runs).
    // The first event per LWP may be a switch-out if that LWP was already
    // running a thread when the epoch began.
    use std::collections::HashMap;
    let mut running: HashMap<u32, Option<bool>> = HashMap::new();
    for e in &events {
        let slot = running.entry(e.lwp).or_insert(None);
        match e.tag {
            Tag::Dispatch => {
                assert_ne!(
                    *slot,
                    Some(true),
                    "two dispatches on lwp {} without a switch-out",
                    e.lwp
                );
                *slot = Some(true);
            }
            Tag::SwitchOut => {
                assert_ne!(
                    *slot,
                    Some(false),
                    "two switch-outs on lwp {} without a dispatch",
                    e.lwp
                );
                *slot = Some(false);
            }
            _ => {}
        }
    }

    // Every spawned thread was dispatched repeatedly (it yielded YIELDS
    // times), and each of its runs ended with a switch-out.
    for id in &spawned {
        let dispatches = events
            .iter()
            .filter(|e| e.tag == Tag::Dispatch && e.a == u64::from(*id))
            .count();
        assert!(
            dispatches >= 2,
            "thread {id} was dispatched {dispatches} times; yielding must \
             multiplex it back onto the LWP"
        );
    }

    // Counters see at least everything the rings kept (they also count
    // events later overwritten, so >=).
    let c = trace::counters();
    for tag in [
        Tag::Dispatch,
        Tag::SwitchOut,
        Tag::ThreadCreate,
        Tag::ThreadExit,
    ] {
        let drained = events.iter().filter(|e| e.tag == tag).count() as u64;
        assert!(
            c.get(tag) >= drained,
            "{} counter {} below drained count {drained}",
            tag.name(),
            c.get(tag)
        );
    }
    assert!(c.get(Tag::ThreadCreate) >= THREADS as u64);
    assert!(c.get(Tag::ThreadExit) >= THREADS as u64);

    // The human dump has one line per event; the Chrome export is a JSON
    // object with one record per emitted event phase.
    assert_eq!(trace::render(&events).lines().count(), events.len());
    let json = trace::export_chrome(&events);
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.ends_with("}"));
    assert!(json.contains("\"ph\":\"B\""), "no begin slices in:\n{json}");
    assert!(json.contains("\"ph\":\"E\""), "no end slices in:\n{json}");

    // Back to automatic pool sizing for any test that follows.
    threads::set_concurrency(0).expect("setconcurrency(0)");
}
