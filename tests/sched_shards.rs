//! The sharded dispatcher structure: steal ordering and conservation.
//!
//! The unit tests in `sunmt::runq` cover single operations; these
//! integration tests pin down the two properties the scheduler actually
//! leans on. First, steal ordering is *deterministic*: victim selection
//! follows the advertised top priorities and items leave a victim in the
//! same order its owner would have dispatched them, so "highest priority
//! runnable thread runs" survives sharding. Second, conservation: under
//! genuinely concurrent pushes, pops, and steals, no item is lost or
//! dispatched twice and the lock-free total (`len()`, what
//! `sunmt::stats().runnable` reports) agrees with the per-shard truth at
//! every quiescent point.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use sunmt::runq::{Placement, RunQueue, ShardedRunQueue, SHARD_CAP};
use sunmt::{CreateFlags, ThreadBuilder};

#[test]
fn steal_order_follows_priority_then_fifo() {
    let q: ShardedRunQueue<(i32, u64)> = ShardedRunQueue::new(4);
    // Shard 1: two items at priority 7 (FIFO pair), one at 2.
    q.push(1, (7, 10));
    q.push(1, (7, 11));
    q.push(1, (2, 12));
    // Shard 2: a single priority-9 item; shard 3: priority 5.
    q.push(2, (9, 20));
    q.push(3, (5, 30));

    // A thief on shard 0 drains the world in strict priority order, FIFO
    // within a level, re-picking the best victim every trip.
    let order: Vec<u64> = std::iter::from_fn(|| q.steal(0))
        .map(|(_, id)| id)
        .collect();
    assert_eq!(order, vec![20, 10, 11, 30, 12]);
    assert_eq!(q.steal_count(), 5);
    assert!(q.is_empty());
}

#[test]
fn steal_order_is_reproducible() {
    // Same seeded layout, same steal sequence, every time — the property
    // that makes a dispatch-order bug reportable.
    let run = || {
        let q: ShardedRunQueue<(i32, u64)> = ShardedRunQueue::new(3);
        for (shard, prio, id) in [(1, 4, 1u64), (2, 4, 2), (1, 8, 3), (2, 1, 4), (1, 4, 5)] {
            q.push(shard, (prio, id));
        }
        std::iter::from_fn(|| q.steal(0))
            .map(|(_, id)| id)
            .collect::<Vec<_>>()
    };
    let first = run();
    assert_eq!(first, run());
    assert_eq!(first, run());
}

#[test]
fn pop_prefers_home_unless_injection_outranks() {
    let q: ShardedRunQueue<(i32, u64)> = ShardedRunQueue::new(2);
    q.push(1, (9, 1)); // highest priority, but another shard's
    q.push_inject((5, 2));
    q.push(0, (1, 3)); // lowest priority, the home shard's
                       // The injected item outranks the home shard's top, so it dispatches
                       // first (a preempted thread requeues on its own shard — taking home
                       // blindly would dispatch it ahead of the thread that preempted it);
                       // then the home shard, then the steal. Other shards never outrank
                       // either: their own LWPs service them.
    assert_eq!(q.pop(0), Some((5, 2)));
    assert_eq!(q.pop(0), Some((1, 3)));
    assert_eq!(q.pop(0), Some((9, 1)));
    assert_eq!(q.steal_count(), 1);
    // With the ranks reversed, home keeps its dispatch-locality win.
    q.push(0, (5, 4));
    q.push_inject((5, 5));
    assert_eq!(q.pop(0), Some((5, 4)));
    assert_eq!(q.pop(0), Some((5, 5)));
}

#[test]
fn conservation_under_concurrent_push_pop_steal() {
    // The property test: P producers push IDS items each (cross-shard
    // pushes and periodic injection included), C consumers pop-or-steal
    // until the whole batch is accounted for. Every id must be seen
    // exactly once, and when the dust settles the atomic total must be
    // zero and agree with what the consumers took.
    const PRODUCERS: usize = 4;
    const CONSUMERS: usize = 4;
    const IDS: u64 = 2_000;

    for round in 0..3u64 {
        let q: Arc<ShardedRunQueue<(i32, u64)>> = Arc::new(ShardedRunQueue::new(CONSUMERS));
        let taken = Arc::new(AtomicU64::new(0));
        let seen: Arc<Mutex<HashSet<u64>>> = Arc::new(Mutex::new(HashSet::new()));

        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let home = q.assign_shard();
                    for i in 0..IDS {
                        let id = (p as u64) * IDS + i;
                        let prio = ((id ^ round) % 11) as i32;
                        if i % 16 == 15 {
                            q.push_inject((prio, id));
                        } else if i % 4 == 3 {
                            q.push((home + 1) % q.num_shards(), (prio, id));
                        } else {
                            q.push(home, (prio, id));
                        }
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..CONSUMERS)
            .map(|c| {
                let q = Arc::clone(&q);
                let taken = Arc::clone(&taken);
                let seen = Arc::clone(&seen);
                std::thread::spawn(move || {
                    let total = PRODUCERS as u64 * IDS;
                    let mut mine = Vec::new();
                    while taken.load(Ordering::Acquire) < total {
                        if let Some((_, id)) = q.pop(c) {
                            taken.fetch_add(1, Ordering::AcqRel);
                            mine.push(id);
                        } else {
                            std::thread::yield_now();
                        }
                    }
                    let mut seen = seen.lock().unwrap();
                    for id in mine {
                        assert!(seen.insert(id), "id {id} dispatched twice");
                    }
                })
            })
            .collect();
        for h in producers {
            h.join().expect("producer");
        }
        for h in consumers {
            h.join().expect("consumer");
        }

        assert_eq!(
            seen.lock().unwrap().len() as u64,
            PRODUCERS as u64 * IDS,
            "round {round}: items lost in the queue"
        );
        assert_eq!(q.len(), 0, "round {round}: atomic total out of sync");
        assert!(
            q.pop(0).is_none(),
            "round {round}: queue not actually empty"
        );
        assert!(q.inject_count() >= PRODUCERS as u64 * (IDS / 16));
    }
}

#[test]
fn overflow_spill_keeps_the_total_exact() {
    // Fill a shard past SHARD_CAP so pushes spill to injection, then
    // drain from a different home shard; len() must track exactly.
    let q: ShardedRunQueue<(i32, u64)> = ShardedRunQueue::new(2);
    let n = SHARD_CAP as u64 + 50;
    let mut spilled = 0;
    for i in 0..n {
        if q.push(0, (1, i)) == Placement::Injected {
            spilled += 1;
        }
    }
    assert_eq!(spilled, 50);
    assert_eq!(q.len(), n as usize);
    let mut got = 0;
    while q.pop(1).is_some() {
        got += 1;
    }
    assert_eq!(got, n);
    assert_eq!(q.len(), 0);
}

#[test]
fn scheduler_runnable_count_settles_to_zero_across_shards() {
    // Through the real library: a burst of unbound creates exercises the
    // sharded dispatch path (the injection counter moves — creates come
    // from a context without a home shard or from other LWPs' shards),
    // and once everything is joined the cross-shard runnable total that
    // stats() reads off the atomic must be exactly zero.
    sunmt::init();
    let before = sunmt::stats();
    for _ in 0..4 {
        let ids: Vec<_> = (0..64)
            .map(|_| {
                ThreadBuilder::new()
                    .flags(CreateFlags::WAIT)
                    .spawn(std::thread::yield_now)
                    .expect("spawn")
            })
            .collect();
        for id in ids {
            sunmt::wait(Some(id)).expect("wait");
        }
    }
    let after = sunmt::stats();
    assert_eq!(after.runnable, 0, "runnable total must drain to zero");
    assert!(
        after.dispatches > before.dispatches,
        "the burst must have gone through the dispatcher"
    );
    assert!(
        after.injects > before.injects || after.steals > before.steals,
        "the sharded paths (injection or steal) never ran"
    );
}

#[test]
fn injected_work_is_not_starved_by_a_yield_loop() {
    // Regression: a thread in a yield loop re-queues to its LWP's own
    // shard on every dispatch, so the shard never empties; creates from
    // this adopted (non-pool) context arrive via the injection queue and
    // must still run — the FAIR_EVERY pop rotation guarantees it. Before
    // that rotation existed this test (and the signal-broadcast test)
    // hung forever on a single-LWP pool.
    sunmt::init();
    let stop = Arc::new(AtomicU64::new(0));
    let s = Arc::clone(&stop);
    let spinner = ThreadBuilder::new()
        .flags(CreateFlags::WAIT)
        .spawn(move || {
            while s.load(Ordering::SeqCst) == 0 {
                sunmt::yield_now();
            }
        })
        .expect("spawn spinner");
    for _ in 0..8 {
        let id = ThreadBuilder::new()
            .flags(CreateFlags::WAIT)
            .spawn(|| {})
            .expect("spawn");
        sunmt::wait(Some(id)).expect("injected thread starved behind the yield loop");
    }
    stop.store(1, Ordering::SeqCst);
    sunmt::wait(Some(spinner)).expect("wait spinner");
}

#[test]
fn single_level_queue_and_shards_agree_on_order() {
    // Differential check: with one shard and no injection, the sharded
    // structure must dispatch in exactly the order the plain multilevel
    // queue does.
    let mut plain: RunQueue<(i32, u64)> = RunQueue::new();
    let sharded: ShardedRunQueue<(i32, u64)> = ShardedRunQueue::new(1);
    let items = [(3, 1u64), (8, 2), (3, 3), (0, 4), (8, 5), (5, 6)];
    for it in items {
        plain.push(it);
        sharded.push(0, it);
    }
    loop {
        let a = plain.pop();
        let b = sharded.pop(0);
        assert_eq!(a, b);
        if a.is_none() {
            break;
        }
    }
}
