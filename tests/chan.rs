//! End-to-end tests for `sunmt-chan`: blocking MPSC/MPMC handoff across
//! unbound threads, backpressure on bounded sends, timed receives,
//! disconnect semantics, `Select` multi-wait, the event bus, and the
//! async `Waker` bridge (`recv().await` driven by an unbound thread —
//! the crate's acceptance path).
//!
//! Channels are per-test instances, so these tests run in parallel; the
//! only shared state is the threads runtime, which `init` makes
//! idempotent.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use sunos_mt::chan::{self, EventBus, RecvTimeoutError, Select, TryRecvError, TrySendError};
use sunos_mt::threads::{self, CreateFlags, ThreadBuilder, ThreadId};

/// Spawns an *unbound* joinable thread — the multiplexed kind whose
/// blocking goes through the user-level sleep queue.
fn unbound(f: impl FnOnce() + Send + 'static) -> ThreadId {
    ThreadBuilder::new()
        .flags(CreateFlags::WAIT)
        .spawn(f)
        .expect("spawn unbound thread")
}

#[test]
fn bounded_handoff_is_fifo_across_unbound_threads() {
    threads::init();
    const N: u64 = 10_000;
    // Capacity far below N: the producer must repeatedly block on a
    // full ring and be woken by the consumer's receives.
    let (tx, rx) = chan::bounded::<u64>(4);
    let producer = unbound(move || {
        for i in 0..N {
            tx.send(i).expect("receiver alive");
        }
    });
    for expect in 0..N {
        assert_eq!(rx.recv().expect("producer alive"), expect);
    }
    threads::wait(Some(producer)).expect("join producer");
    assert!(matches!(rx.try_recv(), Err(TryRecvError::Disconnected)));
}

#[test]
fn mpmc_conserves_every_message_under_contention() {
    threads::init();
    const PRODUCERS: u64 = 4;
    const CONSUMERS: usize = 4;
    const PER: u64 = 2_500;

    let (tx, rx) = chan::bounded::<u64>(8);
    let mut ids = Vec::new();
    for p in 0..PRODUCERS {
        let tx = tx.clone();
        ids.push(unbound(move || {
            for i in 0..PER {
                tx.send(p * PER + i).expect("receivers alive");
            }
        }));
    }
    drop(tx);

    let got = Arc::new(Mutex::new(Vec::new()));
    for _ in 0..CONSUMERS {
        let rx = rx.clone();
        let got = Arc::clone(&got);
        ids.push(unbound(move || {
            let mut local = Vec::new();
            while let Ok(v) = rx.recv() {
                local.push(v);
            }
            got.lock().expect("collector").extend(local);
        }));
    }
    drop(rx);
    for id in ids {
        threads::wait(Some(id)).expect("join");
    }

    let got = got.lock().expect("collector");
    assert_eq!(
        got.len() as u64,
        PRODUCERS * PER,
        "messages lost or duplicated"
    );
    let distinct: HashSet<u64> = got.iter().copied().collect();
    assert_eq!(
        distinct.len() as u64,
        PRODUCERS * PER,
        "duplicate deliveries"
    );
}

#[test]
fn full_bounded_channel_applies_backpressure() {
    threads::init();
    // `bounded` promises *at least* the requested capacity; the ring
    // rounds a request of 1 up to its floor of 2.
    let (tx, rx) = chan::bounded::<u32>(1);
    tx.send(1).expect("empty channel");
    tx.send(2).expect("one slot left");
    assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));

    // A blocking send parks until the receiver drains a slot.
    let sent_third = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&sent_third);
    let tx2 = tx.clone();
    let sender = unbound(move || {
        tx2.send(3).expect("receiver alive");
        flag.store(true, Ordering::SeqCst);
    });
    assert_eq!(rx.recv().expect("value queued"), 1);
    assert_eq!(rx.recv().expect("value queued"), 2);
    assert_eq!(rx.recv().expect("blocked sender delivers"), 3);
    threads::wait(Some(sender)).expect("join sender");
    assert!(sent_third.load(Ordering::SeqCst));
}

#[test]
fn unbounded_spill_preserves_single_sender_order() {
    threads::init();
    // Far past the internal ring, so the overflow spill engages.
    const N: u64 = 5_000;
    let (tx, rx) = chan::unbounded::<u64>();
    for i in 0..N {
        tx.send(i)
            .expect("unbounded send cannot fail while rx lives");
    }
    assert_eq!(rx.len() as u64, N);
    drop(tx);
    let drained: Vec<u64> = rx.iter().collect();
    assert_eq!(drained, (0..N).collect::<Vec<_>>());
}

#[test]
fn recv_timeout_expires_then_delivers() {
    threads::init();
    let (tx, rx) = chan::bounded::<u32>(4);

    let t0 = Instant::now();
    assert!(matches!(
        rx.recv_timeout(Duration::from_millis(50)),
        Err(RecvTimeoutError::Timeout)
    ));
    assert!(
        t0.elapsed() >= Duration::from_millis(40),
        "timed out early: {:?}",
        t0.elapsed()
    );

    let late = unbound(move || {
        std::thread::sleep(Duration::from_millis(20));
        tx.send(7).expect("receiver alive");
    });
    assert_eq!(
        rx.recv_timeout(Duration::from_secs(5))
            .expect("in-deadline send"),
        7
    );
    threads::wait(Some(late)).expect("join");
    assert!(matches!(
        rx.recv_timeout(Duration::from_millis(10)),
        Err(RecvTimeoutError::Disconnected)
    ));
}

#[test]
fn disconnect_wakes_a_blocked_receiver_and_fails_senders() {
    threads::init();
    let (tx, rx) = chan::bounded::<u32>(4);
    let receiver = unbound(move || {
        // Blocks with nothing queued; only the sender drop ends this.
        assert!(rx.recv().is_err());
    });
    std::thread::sleep(Duration::from_millis(20));
    drop(tx);
    threads::wait(Some(receiver)).expect("join receiver");

    let (tx, rx) = chan::bounded::<u32>(4);
    drop(rx);
    assert!(tx.send(1).is_err());
    assert!(matches!(tx.try_send(2), Err(TrySendError::Disconnected(2))));
}

#[test]
fn select_reports_the_ready_port() {
    threads::init();
    let (tx_a, rx_a) = chan::bounded::<u32>(4);
    let (tx_b, rx_b) = chan::bounded::<&'static str>(4);

    let mut sel = Select::new();
    let ia = sel.recv(&rx_a);
    let ib = sel.recv(&rx_b);
    assert_eq!((ia, ib), (0, 1));
    assert_eq!(sel.ready(), None);
    assert_eq!(sel.wait_timeout(Duration::from_millis(20)), None);

    tx_b.send("hello").expect("rx_b alive");
    assert_eq!(sel.wait(), ib);
    assert_eq!(rx_b.try_recv().expect("winner has the message"), "hello");

    // A blocked select is woken by a send that arrives later.
    let late = unbound(move || {
        std::thread::sleep(Duration::from_millis(20));
        tx_a.send(42).expect("rx_a alive");
    });
    assert_eq!(sel.wait(), ia);
    assert_eq!(rx_a.try_recv().expect("woken port delivers"), 42);
    threads::wait(Some(late)).expect("join");
}

#[test]
fn select_covers_mpsc_receivers_and_disconnects() {
    threads::init();
    let (tx, rx) = chan::mpsc::channel::<u32>(4);
    let mut sel = Select::new();
    let i = sel.recv(&rx);
    drop(tx);
    // Disconnection counts as readiness: the waiter must not hang.
    assert_eq!(sel.wait(), i);
    assert!(matches!(rx.try_recv(), Err(TryRecvError::Disconnected)));
}

#[test]
fn event_bus_fans_out_in_order_and_prunes_dead_subscribers() {
    threads::init();
    let bus = EventBus::new();
    let a = bus.subscribe();
    let b = bus.subscribe();
    assert_eq!(bus.subscriber_count(), 2);

    for ev in ["open", "write", "close"] {
        assert_eq!(bus.publish(&ev.to_string()), 2);
    }
    for rx in [&a, &b] {
        assert_eq!(rx.try_recv().expect("fanned out"), "open");
        assert_eq!(rx.try_recv().expect("fanned out"), "write");
        assert_eq!(rx.try_recv().expect("fanned out"), "close");
    }

    drop(b);
    assert_eq!(bus.publish(&"late".to_string()), 1);
    assert_eq!(bus.subscriber_count(), 1);
    assert_eq!(a.recv().expect("surviving subscriber"), "late");
}

#[test]
fn mpsc_receiver_blocks_and_drains_like_the_core_channel() {
    threads::init();
    const N: u64 = 1_000;
    let (tx, rx) = chan::mpsc::unbounded::<u64>();
    let mut ids = Vec::new();
    for p in 0..4u64 {
        let tx = tx.clone();
        ids.push(unbound(move || {
            for i in 0..N {
                tx.send(p * N + i).expect("receiver alive");
            }
        }));
    }
    drop(tx);
    let mut got: Vec<u64> = rx.iter().collect();
    assert_eq!(got.len() as u64, 4 * N);
    got.sort_unstable();
    got.dedup();
    assert_eq!(got.len() as u64, 4 * N, "duplicate deliveries");
    for id in ids {
        threads::wait(Some(id)).expect("join");
    }
}

/// The acceptance path: an async task does `recv().await` across the
/// `Waker` bridge while running on an *unbound* thread, so waits are
/// user-level sleeps multiplexed over the LWP pool.
#[test]
fn async_recv_await_runs_on_an_unbound_thread() {
    threads::init();
    let (tx, rx) = chan::bounded::<u64>(4);
    let (done_tx, done_rx) = chan::bounded::<u64>(1);

    let task = chan::spawn(async move {
        let mut sum = 0;
        while let Ok(v) = rx.recv_async().await {
            sum += v;
        }
        done_tx.send(sum).expect("main waits on done_rx");
    })
    .expect("spawn async task");

    for v in 1..=100u64 {
        tx.send(v).expect("task alive");
    }
    drop(tx);
    assert_eq!(done_rx.recv().expect("task finishes"), 5_050);
    threads::wait(Some(task)).expect("join async task");
}

#[test]
fn block_on_drives_futures_on_the_calling_thread() {
    threads::init();
    // Trivially ready future: no parks at all.
    assert_eq!(chan::block_on(async { 2 + 2 }), 4);

    // A pending future woken from another thread.
    let (tx, rx) = chan::bounded::<&'static str>(1);
    let sender = unbound(move || {
        std::thread::sleep(Duration::from_millis(10));
        tx.send("woken").expect("receiver alive");
    });
    assert_eq!(
        chan::block_on(async { rx.recv_async().await }).expect("sender delivers"),
        "woken"
    );
    threads::wait(Some(sender)).expect("join");
    assert!(chan::block_on(rx.recv_async()).is_err());
}
