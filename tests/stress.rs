//! Seeded randomized stress: a chaotic but reproducible mix of every
//! thread operation, checking global invariants at the end. Catches
//! interaction bugs the targeted tests cannot (stop-during-sleep,
//! priority churn during pool shrink, wait racing exit, ...).

use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::Arc;

use sunmt_bench::rng::SmallRng;

use sunos_mt::sync::{Mutex, Sema, SyncType};
use sunos_mt::threads::{self, CreateFlags, ThreadBuilder, ThreadId};

struct World {
    counter_lock: Mutex,
    counter: AtomicUsize,
    tokens: Sema,
    exits: AtomicUsize,
}

fn worker(w: Arc<World>, seed: u64) -> impl FnOnce() + Send + 'static {
    move || {
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..rng.gen_range(5..40) {
            match rng.gen_range(0u8..5) {
                0 => {
                    w.counter_lock.enter();
                    w.counter.fetch_add(1, Ordering::Relaxed);
                    w.counter_lock.exit();
                }
                1 => threads::yield_now(),
                2 => {
                    w.tokens.v();
                    w.tokens.p();
                }
                3 => {
                    let _ = threads::set_priority(None, rng.gen_range(0..20));
                }
                _ => {
                    sunos_mt::threads::signals::poll();
                }
            }
        }
        w.exits.fetch_add(1, Ordering::SeqCst);
    }
}

#[test]
fn randomized_thread_soup() {
    const SEED: u64 = 0xC0FFEE;
    const WORKERS: usize = 48;
    let mut rng = SmallRng::seed_from_u64(SEED);
    let world = Arc::new(World {
        counter_lock: Mutex::new(SyncType::DEFAULT),
        counter: AtomicUsize::new(0),
        tokens: Sema::new(1, SyncType::DEFAULT),
        exits: AtomicUsize::new(0),
    });

    let mut waitable: Vec<ThreadId> = Vec::new();
    let mut stopped: Vec<ThreadId> = Vec::new();
    for i in 0..WORKERS {
        let mut flags = CreateFlags::WAIT;
        if rng.gen_bool(0.2) {
            flags = flags | CreateFlags::BIND_LWP;
        } else if rng.gen_bool(0.15) {
            flags = flags | CreateFlags::STOP;
        }
        if rng.gen_bool(0.05) {
            flags = flags | CreateFlags::NEW_LWP;
        }
        let id = ThreadBuilder::new()
            .flags(flags)
            .spawn(worker(Arc::clone(&world), SEED ^ (i as u64) << 17))
            .expect("spawn");
        if flags.contains(CreateFlags::STOP) {
            stopped.push(id);
        }
        waitable.push(id);
        // Meanwhile, churn the pool and poke random threads.
        if rng.gen_bool(0.2) {
            threads::set_concurrency(rng.gen_range(1..5)).expect("setconcurrency");
        }
        if rng.gen_bool(0.3) {
            if let Some(&victim) = waitable.get(rng.gen_range(0..waitable.len())) {
                // Stop/continue a random (possibly finished) thread; errors
                // for exited threads are expected and fine.
                if threads::stop(Some(victim)).is_ok() {
                    let _ = threads::cont(victim);
                }
            }
        }
    }
    // Release every deliberately-stopped thread.
    for id in stopped {
        let _ = threads::cont(id);
    }
    // Everything must be reapable.
    for id in waitable {
        threads::wait(Some(id)).expect("every worker must be waitable");
    }
    assert_eq!(
        world.exits.load(Ordering::SeqCst),
        WORKERS,
        "every worker must have run to completion"
    );
    threads::set_concurrency(0).expect("setconcurrency");
}

#[test]
fn randomized_soup_is_reproducible_in_outcome() {
    // Two rounds of a smaller soup: totals must match across rounds (the
    // schedule may differ, the work must not).
    let run = || {
        let world = Arc::new(World {
            counter_lock: Mutex::new(SyncType::DEFAULT),
            counter: AtomicUsize::new(0),
            tokens: Sema::new(1, SyncType::DEFAULT),
            exits: AtomicUsize::new(0),
        });
        let ids: Vec<ThreadId> = (0..16)
            .map(|i| {
                ThreadBuilder::new()
                    .flags(CreateFlags::WAIT)
                    .spawn(worker(Arc::clone(&world), 999 + i))
                    .expect("spawn")
            })
            .collect();
        for id in ids {
            threads::wait(Some(id)).expect("wait");
        }
        world.counter.load(Ordering::SeqCst)
    };
    assert_eq!(run(), run(), "same seeds must do the same locked work");
}

#[test]
fn interleaved_any_and_specific_waits() {
    let gate = Arc::new(AtomicU32::new(0));
    let mut specific = Vec::new();
    for i in 0..12 {
        let g = Arc::clone(&gate);
        let id = ThreadBuilder::new()
            .flags(CreateFlags::WAIT)
            .spawn(move || {
                while g.load(Ordering::SeqCst) == 0 {
                    threads::yield_now();
                }
            })
            .expect("spawn");
        if i % 2 == 0 {
            specific.push(id);
        }
    }
    gate.store(1, Ordering::SeqCst);
    // Half reaped by name, the rest by any-wait; all must resolve.
    for id in specific {
        threads::wait(Some(id)).expect("specific wait");
    }
    for _ in 0..6 {
        threads::wait(None).expect("any wait");
    }
}
