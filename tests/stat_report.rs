//! End-to-end checks for the `sunmt-stat` layer: a contended
//! `sunmt_sync::Mutex` must show up in the lockstat report *by address*
//! with contention counts and hold-time percentiles, a storm of unbound
//! threads must populate the run-queue wait histogram and the scheduler
//! gauge source, and `enable()` must open a fresh epoch.
//!
//! The statistics registry is process-global, so every test here takes
//! the serial lock and brackets its own enable/disable window.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use sunos_mt::stat::{self, Ctr, Hs};
use sunos_mt::sync::{Mutex, SyncType};
use sunos_mt::threads::{self, CreateFlags, ThreadBuilder};

/// Stat blocks and the site table are process-global; tests take turns.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn contended_mutex_is_named_in_the_report() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    const WORKERS: usize = 4;
    const ROUNDS: usize = 2_000;

    let m = Arc::new(Mutex::new(SyncType::DEFAULT));
    let site = m.as_ref() as *const Mutex as usize;

    stat::enable();
    // Hold the mutex while the workers start so the first acquire of
    // every worker is contended by construction, not by timing luck.
    m.enter();
    let started = Arc::new(AtomicUsize::new(0));
    let hs: Vec<_> = (0..WORKERS)
        .map(|_| {
            let m = Arc::clone(&m);
            let started = Arc::clone(&started);
            std::thread::spawn(move || {
                started.fetch_add(1, Ordering::SeqCst);
                for _ in 0..ROUNDS {
                    m.enter();
                    m.exit();
                }
            })
        })
        .collect();
    while started.load(Ordering::SeqCst) < WORKERS {
        std::thread::yield_now();
    }
    std::thread::sleep(Duration::from_millis(20));
    m.exit();
    for h in hs {
        h.join().expect("worker");
    }
    stat::disable();

    let snap = stat::snapshot();
    let l = snap
        .locks
        .iter()
        .find(|l| l.addr == site)
        .expect("the hammered mutex must appear in the site table");
    // The holder's own enter/exit pair plus every worker acquire.
    assert_eq!(l.acquires, 1 + (WORKERS * ROUNDS) as u64);
    assert!(l.contended > 0, "workers never blocked on the held mutex");
    assert!(l.hold_count > 0 && l.avg_hold_ns() > 0.0);

    let report = stat::stats_report();
    let site_hex = format!("{site:#x}");
    assert!(report.contains(&site_hex), "site missing:\n{report}");
    assert!(report.contains("avg-hold-ns"), "no hold column:\n{report}");
    assert!(
        report.contains("mutex_hold"),
        "no hold histogram:\n{report}"
    );

    // The same site must be visible to scrapers.
    let prom = stat::prometheus();
    assert!(prom.contains(&format!("sunmt_lock_acquires_total{{site=\"{site_hex}\"}}")));
    let json = stat::snapshot_json();
    assert!(json.contains(&site_hex));
}

#[test]
fn thread_storm_populates_runq_wait_and_sched_source() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    threads::init();
    stat::enable();

    let mut ids = Vec::new();
    for _ in 0..64 {
        ids.push(
            ThreadBuilder::new()
                .flags(CreateFlags::WAIT)
                .spawn(|| {})
                .expect("spawn"),
        );
    }
    for id in ids {
        threads::wait(Some(id)).expect("wait");
    }
    stat::disable();

    let snap = stat::snapshot();
    let rq = snap.hist(Hs::RunqWait);
    assert!(rq.count > 0, "no runq-wait samples from 64 dispatches");
    assert!(rq.max >= rq.p50 && rq.max > 0.0);

    let (_, sched) = snap
        .sources
        .iter()
        .find(|(name, _)| *name == "sched")
        .expect("sunmt::init must register the sched gauge source");
    let get = |k: &str| {
        sched
            .iter()
            .find(|(n, _)| n == k)
            .unwrap_or_else(|| panic!("missing sched gauge {k}"))
            .1
    };
    assert!(get("dispatches") > 0);
    assert!(get("magazine_hits") + get("magazine_misses") >= 64);

    let report = stat::stats_report();
    assert!(report.contains("runq_wait"), "no runq histogram:\n{report}");
    assert!(report.contains("\nsched:"), "no sched source:\n{report}");
}

#[test]
fn trace_drops_are_reported_to_scrapers() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    use sunos_mt::trace::{self, Tag};

    // Overrun this thread's trace ring (RING_CAP = 4096 events) so the
    // overwrite counter must move; it is cumulative across epochs.
    let before = trace::dropped();
    trace::enable();
    for i in 0..(3 * 4096u64) {
        trace::emit(Tag::ChanSend, i, 0);
    }
    trace::disable();
    let snap = stat::snapshot();
    assert!(
        snap.trace_dropped >= before + 4096,
        "ring overrun not counted: before={before} after={}",
        snap.trace_dropped
    );

    let prom = stat::prometheus();
    assert!(
        prom.contains("# TYPE sunmt_trace_dropped_total counter")
            && prom.contains("sunmt_trace_dropped_total "),
        "dropped counter missing from prometheus:\n{prom}"
    );
    let json = stat::snapshot_json();
    assert!(
        json.contains("\"trace_dropped\":"),
        "dropped counter missing from json:\n{json}"
    );
}

#[test]
fn enable_opens_a_fresh_epoch_and_disabled_probes_record_nothing() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());

    // A probe is an `enabled()` branch in front of the raw primitive;
    // spell that out here rather than importing the macros.
    let probe = |c: u64, v: u64| {
        if stat::enabled() {
            stat::add(Ctr::BenchProbe, c);
            stat::record(Hs::BenchLat, v);
        }
    };

    stat::enable();
    probe(5, 1024);
    stat::disable();

    // Disabled probes are dead: nothing moves between epochs, and a
    // timer pair started while disabled stays disarmed (tick() == 0).
    probe(99, 1 << 20);
    assert_eq!(stat::tick(), 0);
    stat::record_since(Hs::BenchLat, 0);
    let snap = stat::snapshot();
    assert_eq!(snap.counter(Ctr::BenchProbe), 5);
    assert_eq!(snap.hist(Hs::BenchLat).count, 1);

    // Re-enabling zeroes the previous epoch everywhere.
    stat::enable();
    let fresh = stat::snapshot();
    stat::disable();
    assert_eq!(fresh.counter(Ctr::BenchProbe), 0);
    assert_eq!(fresh.hist(Hs::BenchLat).count, 0);
}
