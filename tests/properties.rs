//! Seeded randomized property tests on the synchronization variables and
//! the simulated kernel's invariants. Each property runs many generated
//! cases from a fixed-seed `SmallRng` stream, so failures replay exactly.

use sunmt_bench::rng::SmallRng;
use sunos_mt::simkernel::threads::{install, PkgCosts, PkgModel, TOp, ThreadSpec};
use sunos_mt::simkernel::{LwpProgram, Op, SchedClass, SimConfig, SimKernel};
use sunos_mt::sync::{Mutex, RwLock, RwType, Sema, SyncType};

const CASES: usize = 64;

// ---------------------------------------------------------------------
// Semaphore counting: any single-threaded sequence of try_p/v preserves
// token conservation.

#[test]
fn sema_token_conservation() {
    let mut rng = SmallRng::seed_from_u64(0x5E3A);
    for case in 0..CASES {
        let initial = rng.gen_range(0u32..16);
        let s = Sema::new(initial, SyncType::DEFAULT);
        let mut model = initial as i64;
        for _ in 0..rng.gen_range(0usize..200) {
            match rng.gen_range(0u8..2) {
                0 => {
                    let got = s.try_p();
                    assert_eq!(got, model > 0, "case {case}: try_p disagrees with model");
                    if got {
                        model -= 1;
                    }
                }
                _ => {
                    s.v();
                    model += 1;
                }
            }
            assert_eq!(s.count() as i64, model, "case {case}");
        }
    }
}

// ---------------------------------------------------------------------
// RwLock single-threaded protocol: any valid sequence of acquire /
// release / downgrade / try_upgrade keeps the holder invariant
// (writer XOR readers).

#[test]
fn rwlock_holder_invariant() {
    let mut rng = SmallRng::seed_from_u64(0x4377);
    for case in 0..CASES {
        let l = RwLock::new(SyncType::DEFAULT);
        // Model: our own holds only (single-threaded).
        let mut readers = 0u32;
        let mut writer = false;
        for _ in 0..rng.gen_range(0usize..200) {
            match rng.gen_range(0u8..5) {
                0 => {
                    // try reader
                    let got = l.try_enter(RwType::Reader);
                    assert_eq!(got, !writer, "case {case}: reader admission");
                    if got {
                        readers += 1;
                    }
                }
                1 => {
                    // try writer
                    let got = l.try_enter(RwType::Writer);
                    assert_eq!(
                        got,
                        !writer && readers == 0,
                        "case {case}: writer admission"
                    );
                    if got {
                        writer = true;
                    }
                }
                2 => {
                    // release one hold
                    if writer {
                        l.exit();
                        writer = false;
                    } else if readers > 0 {
                        l.exit();
                        readers -= 1;
                    }
                }
                3 => {
                    // downgrade
                    if writer {
                        l.downgrade();
                        writer = false;
                        readers = 1;
                    }
                }
                _ => {
                    // try_upgrade: succeeds iff we are the sole reader.
                    if readers == 1 && !writer {
                        let got = l.try_upgrade();
                        assert!(got, "case {case}: sole reader must upgrade");
                        readers = 0;
                        writer = true;
                    }
                }
            }
            let (w, r) = l.holders();
            assert_eq!(w, writer, "case {case}");
            assert_eq!(r, readers, "case {case}");
            assert!(!(w && r > 0), "case {case}: writer and readers coexist");
        }
    }
}

// ---------------------------------------------------------------------
// Mutex try/exit protocol against a model.

#[test]
fn mutex_try_protocol() {
    let mut rng = SmallRng::seed_from_u64(0x307E);
    for case in 0..CASES {
        let m = Mutex::new(SyncType::DEFAULT);
        let mut held = false;
        for _ in 0..rng.gen_range(0usize..200) {
            match rng.gen_range(0u8..2) {
                0 => {
                    let got = m.try_enter();
                    assert_eq!(got, !held, "case {case}");
                    if got {
                        held = true;
                    }
                }
                _ => {
                    if held {
                        m.exit();
                        held = false;
                    }
                }
            }
            assert_eq!(m.is_locked(), held, "case {case}");
        }
    }
}

// ---------------------------------------------------------------------
// Simulated kernel: work conservation. For any set of compute-only LWPs
// on any CPU count, total CPU time equals total work and the makespan is
// bounded by serial/parallel limits.

#[test]
fn simkernel_work_conservation() {
    let mut rng = SmallRng::seed_from_u64(0xC025);
    for case in 0..CASES {
        let cpus = rng.gen_range(1usize..4);
        let works: Vec<u64> = (0..rng.gen_range(1usize..12))
            .map(|_| rng.gen_range(1u64..5_000))
            .collect();
        let mut k = SimKernel::new(SimConfig {
            cpus,
            ts_quantum: 700,
            dispatch_cost: 0,
        });
        let pid = k.add_process();
        let lwps: Vec<_> = works
            .iter()
            .map(|w| {
                k.add_lwp(
                    pid,
                    SchedClass::Ts,
                    LwpProgram::Script(vec![Op::Compute(*w), Op::Exit]),
                )
            })
            .collect();
        let end = k.run_until_idle(u64::MAX);
        let total: u64 = works.iter().sum();
        let longest: u64 = works.iter().copied().max().unwrap_or(0);
        for (lwp, w) in lwps.iter().zip(&works) {
            assert_eq!(k.lwp_cpu_time(*lwp), *w, "case {case}: work not conserved");
        }
        // Parallel lower bound and serial upper bound.
        assert!(end >= longest.max(total / cpus as u64), "case {case}");
        assert!(end <= total, "case {case}");
    }
}

// ---------------------------------------------------------------------
// Simulated kernel: determinism for mixed workloads.

#[test]
fn simkernel_determinism() {
    let mut rng = SmallRng::seed_from_u64(0xDE7E);
    for case in 0..CASES {
        let cpus = rng.gen_range(1usize..3);
        let seed_ops: Vec<(u8, u64)> = (0..rng.gen_range(1usize..10))
            .map(|_| (rng.gen_range(0u8..4), rng.gen_range(1u64..1_000)))
            .collect();
        let build = |k: &mut SimKernel, pid| {
            for (kind, amt) in &seed_ops {
                let ops = match kind {
                    0 => vec![Op::Compute(*amt), Op::Exit],
                    1 => vec![
                        Op::Syscall {
                            latency: *amt,
                            interruptible: false,
                        },
                        Op::Exit,
                    ],
                    2 => vec![Op::Compute(*amt), Op::Yield, Op::Compute(*amt), Op::Exit],
                    _ => vec![Op::PageFault { latency: *amt }, Op::Compute(*amt), Op::Exit],
                };
                k.add_lwp(pid, SchedClass::Ts, LwpProgram::Script(ops));
            }
        };
        let run = || {
            let mut k = SimKernel::new(SimConfig {
                cpus,
                ts_quantum: 500,
                dispatch_cost: 5,
            });
            let pid = k.add_process();
            build(&mut k, pid);
            let end = k.run_until_idle(u64::MAX);
            (end, format!("{:?}", k.trace().events()))
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "case {case}: same inputs must give identical traces");
    }
}

// ---------------------------------------------------------------------
// The M:N package finishes every compute-only workload, with exactly as
// many completions as threads.

#[test]
fn mn_package_completes_all_threads() {
    let mut rng = SmallRng::seed_from_u64(0x3A2D);
    for case in 0..CASES {
        let lwps = rng.gen_range(1usize..4);
        let works: Vec<u64> = (0..rng.gen_range(1usize..20))
            .map(|_| rng.gen_range(1u64..2_000))
            .collect();
        let mut k = SimKernel::new(SimConfig {
            cpus: 2,
            ts_quantum: 1_000,
            dispatch_cost: 5,
        });
        let pid = k.add_process();
        let n = works.len();
        let h = install(
            &mut k,
            pid,
            PkgModel::Mn {
                lwps,
                activations: false,
                growable: false,
            },
            PkgCosts {
                thread_switch: 3,
                thread_create: 0,
                lwp_create: 0,
            },
            works
                .into_iter()
                .map(|w| ThreadSpec {
                    ops: vec![TOp::Compute(w), TOp::Exit],
                })
                .collect(),
            0,
        );
        k.run_until_idle(u64::MAX);
        assert!(h.all_done(), "case {case}");
        assert_eq!(h.metrics().threads_done, n, "case {case}");
    }
}
