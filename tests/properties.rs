//! Seeded randomized property tests on the synchronization variables and
//! the simulated kernel's invariants. Each property runs many generated
//! cases from a fixed-seed `SmallRng` stream, so failures replay exactly.

use sunmt_bench::rng::SmallRng;
use sunos_mt::simkernel::threads::{install, PkgCosts, PkgModel, TOp, ThreadSpec};
use sunos_mt::simkernel::{LwpProgram, Op, SchedClass, SimConfig, SimKernel};
use sunos_mt::sync::{Mutex, RwLock, RwType, Sema, SyncType};

const CASES: usize = 64;

// ---------------------------------------------------------------------
// Semaphore counting: any single-threaded sequence of try_p/v preserves
// token conservation.

#[test]
fn sema_token_conservation() {
    let mut rng = SmallRng::seed_from_u64(0x5E3A);
    for case in 0..CASES {
        let initial = rng.gen_range(0u32..16);
        let s = Sema::new(initial, SyncType::DEFAULT);
        let mut model = initial as i64;
        for _ in 0..rng.gen_range(0usize..200) {
            match rng.gen_range(0u8..2) {
                0 => {
                    let got = s.try_p();
                    assert_eq!(got, model > 0, "case {case}: try_p disagrees with model");
                    if got {
                        model -= 1;
                    }
                }
                _ => {
                    s.v();
                    model += 1;
                }
            }
            assert_eq!(s.count() as i64, model, "case {case}");
        }
    }
}

// ---------------------------------------------------------------------
// RwLock single-threaded protocol: any valid sequence of acquire /
// release / downgrade / try_upgrade keeps the holder invariant
// (writer XOR readers).

#[test]
fn rwlock_holder_invariant() {
    let mut rng = SmallRng::seed_from_u64(0x4377);
    for case in 0..CASES {
        let l = RwLock::new(SyncType::DEFAULT);
        // Model: our own holds only (single-threaded).
        let mut readers = 0u32;
        let mut writer = false;
        for _ in 0..rng.gen_range(0usize..200) {
            match rng.gen_range(0u8..5) {
                0 => {
                    // try reader
                    let got = l.try_enter(RwType::Reader);
                    assert_eq!(got, !writer, "case {case}: reader admission");
                    if got {
                        readers += 1;
                    }
                }
                1 => {
                    // try writer
                    let got = l.try_enter(RwType::Writer);
                    assert_eq!(
                        got,
                        !writer && readers == 0,
                        "case {case}: writer admission"
                    );
                    if got {
                        writer = true;
                    }
                }
                2 => {
                    // release one hold
                    if writer {
                        l.exit();
                        writer = false;
                    } else if readers > 0 {
                        l.exit();
                        readers -= 1;
                    }
                }
                3 => {
                    // downgrade
                    if writer {
                        l.downgrade();
                        writer = false;
                        readers = 1;
                    }
                }
                _ => {
                    // try_upgrade: succeeds iff we are the sole reader.
                    if readers == 1 && !writer {
                        let got = l.try_upgrade();
                        assert!(got, "case {case}: sole reader must upgrade");
                        readers = 0;
                        writer = true;
                    }
                }
            }
            let (w, r) = l.holders();
            assert_eq!(w, writer, "case {case}");
            assert_eq!(r, readers, "case {case}");
            assert!(!(w && r > 0), "case {case}: writer and readers coexist");
        }
    }
}

// ---------------------------------------------------------------------
// Mutex try/exit protocol against a model.

#[test]
fn mutex_try_protocol() {
    let mut rng = SmallRng::seed_from_u64(0x307E);
    for case in 0..CASES {
        let m = Mutex::new(SyncType::DEFAULT);
        let mut held = false;
        for _ in 0..rng.gen_range(0usize..200) {
            match rng.gen_range(0u8..2) {
                0 => {
                    let got = m.try_enter();
                    assert_eq!(got, !held, "case {case}");
                    if got {
                        held = true;
                    }
                }
                _ => {
                    if held {
                        m.exit();
                        held = false;
                    }
                }
            }
            assert_eq!(m.is_locked(), held, "case {case}");
        }
    }
}

// ---------------------------------------------------------------------
// Simulated kernel: work conservation. For any set of compute-only LWPs
// on any CPU count, total CPU time equals total work and the makespan is
// bounded by serial/parallel limits.

#[test]
fn simkernel_work_conservation() {
    let mut rng = SmallRng::seed_from_u64(0xC025);
    for case in 0..CASES {
        let cpus = rng.gen_range(1usize..4);
        let works: Vec<u64> = (0..rng.gen_range(1usize..12))
            .map(|_| rng.gen_range(1u64..5_000))
            .collect();
        let mut k = SimKernel::new(SimConfig {
            cpus,
            ts_quantum: 700,
            dispatch_cost: 0,
        });
        let pid = k.add_process();
        let lwps: Vec<_> = works
            .iter()
            .map(|w| {
                k.add_lwp(
                    pid,
                    SchedClass::Ts,
                    LwpProgram::Script(vec![Op::Compute(*w), Op::Exit]),
                )
            })
            .collect();
        let end = k.run_until_idle(u64::MAX);
        let total: u64 = works.iter().sum();
        let longest: u64 = works.iter().copied().max().unwrap_or(0);
        for (lwp, w) in lwps.iter().zip(&works) {
            assert_eq!(k.lwp_cpu_time(*lwp), *w, "case {case}: work not conserved");
        }
        // Parallel lower bound and serial upper bound.
        assert!(end >= longest.max(total / cpus as u64), "case {case}");
        assert!(end <= total, "case {case}");
    }
}

// ---------------------------------------------------------------------
// Simulated kernel: determinism for mixed workloads.

#[test]
fn simkernel_determinism() {
    let mut rng = SmallRng::seed_from_u64(0xDE7E);
    for case in 0..CASES {
        let cpus = rng.gen_range(1usize..3);
        let seed_ops: Vec<(u8, u64)> = (0..rng.gen_range(1usize..10))
            .map(|_| (rng.gen_range(0u8..4), rng.gen_range(1u64..1_000)))
            .collect();
        let build = |k: &mut SimKernel, pid| {
            for (kind, amt) in &seed_ops {
                let ops = match kind {
                    0 => vec![Op::Compute(*amt), Op::Exit],
                    1 => vec![
                        Op::Syscall {
                            latency: *amt,
                            interruptible: false,
                        },
                        Op::Exit,
                    ],
                    2 => vec![Op::Compute(*amt), Op::Yield, Op::Compute(*amt), Op::Exit],
                    _ => vec![Op::PageFault { latency: *amt }, Op::Compute(*amt), Op::Exit],
                };
                k.add_lwp(pid, SchedClass::Ts, LwpProgram::Script(ops));
            }
        };
        let run = || {
            let mut k = SimKernel::new(SimConfig {
                cpus,
                ts_quantum: 500,
                dispatch_cost: 5,
            });
            let pid = k.add_process();
            build(&mut k, pid);
            let end = k.run_until_idle(u64::MAX);
            (end, format!("{:?}", k.trace().events()))
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "case {case}: same inputs must give identical traces");
    }
}

// ---------------------------------------------------------------------
// The M:N package finishes every compute-only workload, with exactly as
// many completions as threads.

#[test]
fn mn_package_completes_all_threads() {
    let mut rng = SmallRng::seed_from_u64(0x3A2D);
    for case in 0..CASES {
        let lwps = rng.gen_range(1usize..4);
        let works: Vec<u64> = (0..rng.gen_range(1usize..20))
            .map(|_| rng.gen_range(1u64..2_000))
            .collect();
        let mut k = SimKernel::new(SimConfig {
            cpus: 2,
            ts_quantum: 1_000,
            dispatch_cost: 5,
        });
        let pid = k.add_process();
        let n = works.len();
        let h = install(
            &mut k,
            pid,
            PkgModel::Mn {
                lwps,
                activations: false,
                growable: false,
            },
            PkgCosts {
                thread_switch: 3,
                thread_create: 0,
                lwp_create: 0,
            },
            works
                .into_iter()
                .map(|w| ThreadSpec {
                    ops: vec![TOp::Compute(w), TOp::Exit],
                })
                .collect(),
            0,
        );
        k.run_until_idle(u64::MAX);
        assert!(h.all_done(), "case {case}");
        assert_eq!(h.metrics().threads_done, n, "case {case}");
    }
}

// ---------------------------------------------------------------------
// Contended downgrade/upgrade: 4 host threads hammer one RwLock with
// randomized enter / try_upgrade / downgrade sequences. Occupancy
// counters (maintained only while holding the lock) must always satisfy
// writer-exclusivity: a writer sees no readers and no other writer; a
// reader sees no writer. Both the default (process-private futex) and
// SYNC_SHARED (cross-process futex scope) variants are exercised.

#[test]
fn rwlock_downgrade_upgrade_under_contention() {
    for (variant, kind) in [("DEFAULT", SyncType::DEFAULT), ("SHARED", SyncType::SHARED)] {
        let base_seed: u64 = 0xD06_u64 ^ (variant.len() as u64);
        contended_rwlock_case(variant, kind, base_seed);
    }
}

fn contended_rwlock_case(variant: &'static str, kind: SyncType, base_seed: u64) {
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    const THREADS: usize = 4;
    const OPS: usize = 400;

    let lock = Arc::new(RwLock::new(kind));
    let readers = Arc::new(AtomicU32::new(0));
    let writers = Arc::new(AtomicU32::new(0));

    let handles: Vec<_> = (0..THREADS)
        .map(|tid| {
            let lock = Arc::clone(&lock);
            let readers = Arc::clone(&readers);
            let writers = Arc::clone(&writers);
            std::thread::spawn(move || {
                let seed = base_seed.wrapping_add(tid as u64);
                let mut rng = SmallRng::seed_from_u64(seed);
                let ctx = move || format!("[{variant} seed={seed:#x} thread={tid}]");
                let check_writer = |site: &str| {
                    assert_eq!(
                        writers.load(Ordering::SeqCst),
                        1,
                        "{} {site}: another writer inside",
                        ctx()
                    );
                    assert_eq!(
                        readers.load(Ordering::SeqCst),
                        0,
                        "{} {site}: reader inside a write section",
                        ctx()
                    );
                };
                for _ in 0..OPS {
                    if rng.gen_bool(0.5) {
                        // Reader path, with a chance to try upgrading.
                        lock.enter(RwType::Reader);
                        readers.fetch_add(1, Ordering::SeqCst);
                        assert_eq!(
                            writers.load(Ordering::SeqCst),
                            0,
                            "{} read: writer inside",
                            ctx()
                        );
                        if rng.gen_bool(0.4) && {
                            readers.fetch_sub(1, Ordering::SeqCst);
                            let up = lock.try_upgrade();
                            if !up {
                                readers.fetch_add(1, Ordering::SeqCst);
                            }
                            up
                        } {
                            writers.fetch_add(1, Ordering::SeqCst);
                            check_writer("upgraded");
                            if rng.gen_bool(0.5) {
                                // Downgrade back to reader before leaving.
                                writers.fetch_sub(1, Ordering::SeqCst);
                                readers.fetch_add(1, Ordering::SeqCst);
                                lock.downgrade();
                                assert_eq!(
                                    writers.load(Ordering::SeqCst),
                                    0,
                                    "{} downgraded: writer inside",
                                    ctx()
                                );
                                readers.fetch_sub(1, Ordering::SeqCst);
                            } else {
                                writers.fetch_sub(1, Ordering::SeqCst);
                            }
                        } else {
                            readers.fetch_sub(1, Ordering::SeqCst);
                        }
                        lock.exit();
                    } else {
                        // Writer path, with a chance to downgrade.
                        lock.enter(RwType::Writer);
                        writers.fetch_add(1, Ordering::SeqCst);
                        check_writer("write");
                        if rng.gen_bool(0.5) {
                            writers.fetch_sub(1, Ordering::SeqCst);
                            readers.fetch_add(1, Ordering::SeqCst);
                            lock.downgrade();
                            assert_eq!(
                                writers.load(Ordering::SeqCst),
                                0,
                                "{} downgraded: writer inside",
                                ctx()
                            );
                            readers.fetch_sub(1, Ordering::SeqCst);
                        } else {
                            writers.fetch_sub(1, Ordering::SeqCst);
                        }
                        lock.exit();
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap_or_else(|_| {
            panic!("[{variant} base_seed={base_seed:#x}] a property thread panicked")
        });
    }
    assert_eq!(
        readers.load(Ordering::SeqCst),
        0,
        "[{variant}] readers leaked"
    );
    assert_eq!(
        writers.load(Ordering::SeqCst),
        0,
        "[{variant}] writers leaked"
    );
    let (w, r) = lock.holders();
    assert!(
        !w && r == 0,
        "[{variant}] lock must end free (writer={w}, readers={r})"
    );
}
