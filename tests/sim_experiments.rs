//! Fast, deterministic versions of the simulator-backed experiments —
//! these pin the qualitative results the ablation binaries report, so a
//! regression in the shape of any result fails `cargo test`.

use sunos_mt::simkernel::lwp::LwpRunState;
use sunos_mt::simkernel::threads::{install, PkgCosts, PkgModel, TOp, ThreadSpec};
use sunos_mt::simkernel::{LwpProgram, Op, SchedClass, SimConfig, SimKernel, TraceEvent};

fn widget() -> ThreadSpec {
    ThreadSpec {
        ops: vec![
            TOp::Compute(30),
            TOp::Io { latency: 200 },
            TOp::Compute(30),
            TOp::Exit,
        ],
    }
}

#[test]
fn mn_beats_one_to_one_on_widget_threads() {
    let run = |model| {
        let mut k = SimKernel::new(SimConfig {
            cpus: 2,
            ts_quantum: 10_000,
            dispatch_cost: 10,
        });
        let pid = k.add_process();
        let h = install(
            &mut k,
            pid,
            model,
            PkgCosts::default(),
            (0..100).map(|_| widget()).collect(),
            0,
        );
        let end = k.run_until_idle(u64::MAX);
        assert!(h.all_done());
        end + h.creation_cost
    };
    let mn = run(PkgModel::Mn {
        lwps: 4,
        activations: false,
        growable: true,
    });
    let one = run(PkgModel::OneToOne);
    assert!(
        mn < one,
        "M:N ({mn}) must beat 1:1 ({one}) on mostly-idle threads"
    );
}

#[test]
fn sigwaiting_growth_beats_no_help() {
    let run = |growable| {
        let mut k = SimKernel::new(SimConfig {
            cpus: 4,
            ts_quantum: 10_000,
            dispatch_cost: 10,
        });
        let pid = k.add_process();
        let threads = (0..8)
            .flat_map(|_| {
                [
                    ThreadSpec {
                        ops: vec![TOp::Poll { latency: 1_000 }, TOp::SemaV(0), TOp::Exit],
                    },
                    ThreadSpec {
                        ops: vec![TOp::SemaP(0), TOp::Compute(100), TOp::Exit],
                    },
                ]
            })
            .collect();
        let h = install(
            &mut k,
            pid,
            PkgModel::Mn {
                lwps: 1,
                activations: false,
                growable,
            },
            PkgCosts::default(),
            threads,
            1,
        );
        let end = k.run_until_idle(u64::MAX);
        assert!(h.all_done());
        end
    };
    let without = run(false);
    let with = run(true);
    assert!(
        with < without,
        "SIGWAITING growth ({with}) must beat serialized no-help ({without})"
    );
}

#[test]
fn gang_beats_timeshare_for_barrier_pairs_under_load() {
    let run = |gang: bool| {
        let mut k = SimKernel::new(SimConfig {
            cpus: 2,
            ts_quantum: 1_000,
            dispatch_cost: 10,
        });
        let pid = k.add_process();
        let bar = k.add_kbarrier(2);
        let class = if gang {
            SchedClass::Gang(1)
        } else {
            SchedClass::Ts
        };
        let mut ops = Vec::new();
        for _ in 0..20 {
            ops.push(Op::Compute(2_500));
            ops.push(Op::Barrier(bar));
        }
        ops.push(Op::Exit);
        let a = k.add_lwp(pid, class, LwpProgram::Script(ops.clone()));
        let b = k.add_lwp(pid, class, LwpProgram::Script(ops));
        for _ in 0..3 {
            k.add_lwp(
                pid,
                SchedClass::Ts,
                LwpProgram::Script(vec![Op::Compute(40_000), Op::Exit]),
            );
        }
        k.run_until_idle(u64::MAX);
        let mut done = 0;
        for (t, e) in k.trace().events() {
            if let TraceEvent::LwpExit { lwp } = e {
                if *lwp == a || *lwp == b {
                    done = done.max(*t);
                }
            }
        }
        done
    };
    let ts = run(false);
    let gang = run(true);
    assert!(gang < ts, "gang ({gang}) must beat timeshare ({ts})");
}

#[test]
fn fork_semantics_match_the_paper() {
    // fork(): all LWPs duplicated, others' interruptible syscalls EINTR'd.
    // fork1(): only the caller duplicated, no EINTR.
    for (op, expect_lwps, expect_eintr) in [(Op::Fork, 2, 1usize), (Op::Fork1, 1, 0)] {
        let mut k = SimKernel::new(SimConfig {
            cpus: 2,
            ts_quantum: 10_000,
            dispatch_cost: 0,
        });
        let pid = k.add_process();
        k.add_lwp(
            pid,
            SchedClass::Ts,
            LwpProgram::Script(vec![
                Op::Syscall {
                    latency: 1_000_000,
                    interruptible: true,
                },
                Op::Exit,
            ]),
        );
        k.add_lwp(
            pid,
            SchedClass::Ts,
            LwpProgram::Script(vec![Op::Compute(10), op, Op::Exit]),
        );
        k.run_until_idle(u64::MAX);
        let child_pid = *k.pids().iter().max().expect("child exists");
        assert_ne!(child_pid, pid);
        assert_eq!(k.lwps_of(child_pid).len(), expect_lwps);
        let eintr = k
            .trace()
            .filter(|e| matches!(e, TraceEvent::SyscallDone { eintr: true, .. }))
            .count();
        assert_eq!(eintr, expect_eintr);
    }
}

#[test]
fn rt_class_always_dispatches_before_ts() {
    let mut k = SimKernel::new(SimConfig {
        cpus: 1,
        ts_quantum: 500,
        dispatch_cost: 0,
    });
    let pid = k.add_process();
    let ts = k.add_lwp(
        pid,
        SchedClass::Ts,
        LwpProgram::Script(vec![Op::Compute(10_000), Op::Exit]),
    );
    let rt = k.add_lwp(
        pid,
        SchedClass::Rt(5),
        LwpProgram::Script(vec![
            Op::Compute(1_000),
            Op::Syscall {
                latency: 300,
                interruptible: false,
            },
            Op::Compute(1_000),
            Op::Exit,
        ]),
    );
    k.run_until_idle(u64::MAX);
    // The RT LWP must exit before the TS LWP despite the TS LWP's head
    // start opportunities at every RT block.
    let exits: Vec<_> = k
        .trace()
        .filter(|e| matches!(e, TraceEvent::LwpExit { .. }))
        .map(|(t, _)| *t)
        .collect();
    assert_eq!(exits.len(), 2);
    assert_eq!(k.lwp_run_state(rt), LwpRunState::Zombie);
    assert_eq!(k.lwp_run_state(ts), LwpRunState::Zombie);
    // RT total = 2000 compute + 300 block; it must finish at exactly 2300,
    // i.e. the TS LWP never ran while RT was runnable.
    assert_eq!(exits[0], 2_300);
}

#[test]
fn proc_snapshots_expose_the_whole_machine_state() {
    let mut k = SimKernel::new(SimConfig::default());
    let p1 = k.add_process();
    let p2 = k.add_process();
    k.add_lwp(
        p1,
        SchedClass::Ts,
        LwpProgram::Script(vec![Op::WaitIndefinite]),
    );
    k.add_lwp(
        p2,
        SchedClass::Rt(1),
        LwpProgram::Script(vec![Op::Compute(10), Op::Exit]),
    );
    k.run_until_idle(u64::MAX);
    let snaps = k.proc_snapshots();
    assert_eq!(snaps.len(), 2);
    assert_eq!(snaps[0].pid, p1);
    assert_eq!(snaps[0].lwps[0].state, LwpRunState::Blocked);
    assert_eq!(snaps[1].lwps[0].state, LwpRunState::Zombie);
    assert_eq!(
        snaps[1].lwps[0].cpu_time,
        10 + SimConfig::default().dispatch_cost
    );
}
