//! Queue-lock conformance: every `SyncType` mutex variant round-trips
//! `init`/`enter`/`exit`/`destroy` under real contention, on bound and
//! unbound threads, and the `DEBUG` bit catches unlock-by-non-owner for
//! the queued protocols exactly as it does for the three-state word.
//!
//! The cross-*process* leg (SYNC_SHARED ticket lock in a `MAP_SHARED`
//! file) lives in `crates/shm`'s test suite next to the other
//! cooperating-process tests.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use sunos_mt::sync::{api, Mutex, SyncType};
use sunos_mt::threads::{self, CreateFlags, ThreadBuilder};

const VARIANTS: &[(SyncType, &str)] = &[
    (SyncType::TICKET, "ticket"),
    (SyncType::MCS, "mcs"),
    (SyncType::HYBRID, "hybrid"),
];

/// Hammers one mutex from `workers` threads spawned with `flags`,
/// checking mutual exclusion the classic way: a non-atomic read-modify-
/// write under the lock must still sum exactly.
fn hammer(kind: SyncType, flags: CreateFlags, workers: usize, iters: usize) {
    struct World {
        m: Mutex,
        // Plain cell mutated under the lock; AtomicUsize only so the
        // type is Sync — every access uses Relaxed load/store pairs,
        // which the mutex alone must keep race-free.
        counter: AtomicUsize,
    }
    let w = Arc::new(World {
        m: Mutex::new(kind),
        counter: AtomicUsize::new(0),
    });
    let mut ids = Vec::new();
    for _ in 0..workers {
        let w = Arc::clone(&w);
        ids.push(
            ThreadBuilder::new()
                .flags(flags)
                .spawn(move || {
                    for _ in 0..iters {
                        w.m.enter();
                        let v = w.counter.load(Ordering::Relaxed);
                        w.counter.store(v + 1, Ordering::Relaxed);
                        w.m.exit();
                    }
                })
                .expect("spawn"),
        );
    }
    for id in ids {
        threads::wait(Some(id)).expect("wait");
    }
    assert_eq!(w.counter.load(Ordering::Relaxed), workers * iters);
}

#[test]
fn queue_variants_exclude_on_bound_threads() {
    for &(kind, name) in VARIANTS {
        hammer(kind, CreateFlags::WAIT | CreateFlags::BIND_LWP, 4, 2_000);
        // Same again with the DEBUG bookkeeping on: the owner word must
        // follow every handoff or the exits start panicking.
        hammer(
            kind | SyncType::DEBUG,
            CreateFlags::WAIT | CreateFlags::BIND_LWP,
            4,
            1_000,
        );
        eprintln!("bound ok: {name}");
    }
}

#[test]
fn queue_variants_exclude_on_unbound_threads() {
    // More unbound threads than pool LWPs, so enters genuinely park the
    // user thread and exits resume a different one mid-queue.
    for &(kind, name) in VARIANTS {
        hammer(kind, CreateFlags::WAIT, 8, 1_000);
        eprintln!("unbound ok: {name}");
    }
}

#[test]
fn queue_variants_round_trip_destroy_and_reinit() {
    // One storage slot cycling through every queue protocol: the word
    // layouts are all different, so destroy+init must fully reset the
    // lock (including the MCS holder-node stash) or the next protocol
    // misreads leftover state.
    let m = Mutex::new(SyncType::DEFAULT);
    for &(kind, _) in VARIANTS {
        for &debug in &[SyncType::DEFAULT, SyncType::DEBUG] {
            api::mutex_init(&m, kind | debug);
            for _ in 0..3 {
                api::mutex_enter(&m);
                assert!(!api::mutex_tryenter(&m), "tryenter on a held lock");
                api::mutex_exit(&m);
                assert!(api::mutex_tryenter(&m), "tryenter on a free lock");
                api::mutex_exit(&m);
            }
            api::mutex_destroy(&m);
        }
    }
}

#[test]
fn shared_ticket_round_trips_in_process() {
    // SYNC_SHARED switches the park path to kernel futexes keyed for
    // cross-process use; within one process it must still be a correct
    // FIFO lock. (The two-process leg is crates/shm's test.)
    hammer(
        SyncType::TICKET | SyncType::SHARED,
        CreateFlags::WAIT | CreateFlags::BIND_LWP,
        4,
        2_000,
    );
}

/// Spawns a helper that acquires `m` and parks forever *holding it*,
/// then returns once the acquisition is visible. The caller's
/// subsequent `exit` is an unlock-by-non-owner.
fn held_by_someone_else(m: &'static Mutex) {
    let entered = Arc::new(AtomicUsize::new(0));
    let flag = Arc::clone(&entered);
    std::thread::spawn(move || {
        m.enter();
        flag.store(1, Ordering::Release);
        // Keep holding; the thread (and the lock) die with the process.
        loop {
            std::thread::park();
        }
    });
    while entered.load(Ordering::Acquire) == 0 {
        std::thread::yield_now();
    }
}

#[test]
#[should_panic(expected = "mutex_exit by a non-holder")]
fn debug_ticket_catches_exit_by_non_owner() {
    let m: &'static Mutex = Box::leak(Box::new(Mutex::new(SyncType::TICKET | SyncType::DEBUG)));
    held_by_someone_else(m);
    m.exit();
}

#[test]
#[should_panic(expected = "mutex_exit by a non-holder")]
fn debug_mcs_catches_exit_by_non_owner() {
    let m: &'static Mutex = Box::leak(Box::new(Mutex::new(SyncType::MCS | SyncType::DEBUG)));
    held_by_someone_else(m);
    m.exit();
}

#[test]
#[should_panic(expected = "mutex_exit by a non-holder")]
fn debug_hybrid_catches_exit_by_non_owner() {
    let m: &'static Mutex = Box::leak(Box::new(Mutex::new(SyncType::HYBRID | SyncType::DEBUG)));
    held_by_someone_else(m);
    m.exit();
}
