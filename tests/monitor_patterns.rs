//! Classic concurrent-programming patterns built purely from the paper's
//! primitives, run with mixed bound/unbound threads: a bounded buffer
//! (monitor with two conditions), a readers/writers workload exercising
//! `rw_downgrade`/`rw_tryupgrade` under load, and a reusable barrier from
//! one mutex + one condition variable.

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::Arc;

use sunos_mt::sync::{Condvar, Mutex, RwLock, RwType, SyncType};
use sunos_mt::threads::{self, CreateFlags, ThreadBuilder};

// -------------------------------------------------------------------------
// Bounded buffer: the canonical two-condition monitor.

struct BoundedBuffer {
    m: Mutex,
    not_full: Condvar,
    not_empty: Condvar,
    q: UnsafeCell<VecDeque<u64>>,
    cap: usize,
}

// SAFETY: `q` is only touched with `m` held.
unsafe impl Sync for BoundedBuffer {}

impl BoundedBuffer {
    fn new(cap: usize) -> BoundedBuffer {
        BoundedBuffer {
            m: Mutex::new(SyncType::DEFAULT),
            not_full: Condvar::new(SyncType::DEFAULT),
            not_empty: Condvar::new(SyncType::DEFAULT),
            q: UnsafeCell::new(VecDeque::new()),
            cap,
        }
    }

    fn put(&self, v: u64) {
        self.m.enter();
        // SAFETY: Under `m`.
        while unsafe { (*self.q.get()).len() } >= self.cap {
            self.not_full.wait(&self.m);
        }
        // SAFETY: Under `m`.
        unsafe { (*self.q.get()).push_back(v) };
        self.not_empty.signal();
        self.m.exit();
    }

    fn take(&self) -> u64 {
        self.m.enter();
        // SAFETY: Under `m`.
        while unsafe { (*self.q.get()).is_empty() } {
            self.not_empty.wait(&self.m);
        }
        // SAFETY: Under `m`.
        let v = unsafe { (*self.q.get()).pop_front() }.expect("non-empty");
        self.not_full.signal();
        self.m.exit();
        v
    }
}

#[test]
fn bounded_buffer_with_mixed_producers_and_consumers() {
    const PRODUCERS: usize = 4;
    const CONSUMERS: usize = 4;
    const PER_PRODUCER: u64 = 500;
    let buf = Arc::new(BoundedBuffer::new(8));
    let sum = Arc::new(AtomicU32::new(0));
    let mut ids = Vec::new();
    for p in 0..PRODUCERS {
        let buf = Arc::clone(&buf);
        // Half the producers bound, half unbound: same monitor, both
        // blocking mechanisms.
        let flags = if p % 2 == 0 {
            CreateFlags::WAIT
        } else {
            CreateFlags::WAIT | CreateFlags::BIND_LWP
        };
        ids.push(
            ThreadBuilder::new()
                .flags(flags)
                .spawn(move || {
                    for i in 0..PER_PRODUCER {
                        buf.put(i + 1);
                    }
                })
                .expect("producer"),
        );
    }
    for c in 0..CONSUMERS {
        let buf = Arc::clone(&buf);
        let sum = Arc::clone(&sum);
        let flags = if c % 2 == 0 {
            CreateFlags::WAIT | CreateFlags::BIND_LWP
        } else {
            CreateFlags::WAIT
        };
        let per_consumer = PRODUCERS as u64 * PER_PRODUCER / CONSUMERS as u64;
        ids.push(
            ThreadBuilder::new()
                .flags(flags)
                .spawn(move || {
                    for _ in 0..per_consumer {
                        sum.fetch_add(buf.take() as u32, Ordering::Relaxed);
                    }
                })
                .expect("consumer"),
        );
    }
    for id in ids {
        threads::wait(Some(id)).expect("wait");
    }
    let expected = PRODUCERS as u32 * (PER_PRODUCER * (PER_PRODUCER + 1) / 2) as u32;
    assert_eq!(
        sum.load(Ordering::SeqCst),
        expected,
        "items lost or duplicated"
    );
}

// -------------------------------------------------------------------------
// Readers/writers with upgrade and downgrade under concurrency.

#[test]
fn rwlock_upgrade_downgrade_under_concurrency() {
    struct Table {
        lock: RwLock,
        version: AtomicUsize,
        upgrades_won: AtomicUsize,
        upgrades_lost: AtomicUsize,
    }
    let t = Arc::new(Table {
        lock: RwLock::new(SyncType::DEFAULT),
        version: AtomicUsize::new(0),
        upgrades_won: AtomicUsize::new(0),
        upgrades_lost: AtomicUsize::new(0),
    });
    const THREADS: usize = 8;
    const ITERS: usize = 400;
    let mut ids = Vec::new();
    for i in 0..THREADS {
        let t = Arc::clone(&t);
        ids.push(
            ThreadBuilder::new()
                .flags(CreateFlags::WAIT)
                .spawn(move || {
                    for n in 0..ITERS {
                        match (n + i) % 3 {
                            0 => {
                                // Search, then maybe upgrade to modify —
                                // the paper's rw_tryupgrade use case.
                                t.lock.enter(RwType::Reader);
                                let _seen = t.version.load(Ordering::Relaxed);
                                if t.lock.try_upgrade() {
                                    t.version.fetch_add(1, Ordering::Relaxed);
                                    t.upgrades_won.fetch_add(1, Ordering::Relaxed);
                                    // Publish, then keep reading:
                                    // rw_downgrade.
                                    t.lock.downgrade();
                                    let _ = t.version.load(Ordering::Relaxed);
                                    t.lock.exit();
                                } else {
                                    t.upgrades_lost.fetch_add(1, Ordering::Relaxed);
                                    t.lock.exit();
                                }
                            }
                            1 => {
                                t.lock.enter(RwType::Writer);
                                t.version.fetch_add(1, Ordering::Relaxed);
                                t.lock.exit();
                            }
                            _ => {
                                t.lock.enter(RwType::Reader);
                                let _ = t.version.load(Ordering::Relaxed);
                                t.lock.exit();
                            }
                        }
                    }
                })
                .expect("spawn"),
        );
    }
    for id in ids {
        threads::wait(Some(id)).expect("wait");
    }
    assert_eq!(t.lock.holders(), (false, 0), "lock must end free");
    let won = t.upgrades_won.load(Ordering::SeqCst);
    let writes = THREADS * ITERS / 3 + won;
    // Every successful upgrade and plain write bumped the version once.
    let version = t.version.load(Ordering::SeqCst);
    assert!(version >= writes.min(version), "sanity");
    assert_eq!(
        version,
        won + (0..THREADS)
            .map(|i| (0..ITERS).filter(|n| (n + i) % 3 == 1).count())
            .sum::<usize>(),
        "writer and upgrade counts must match version increments"
    );
}

// -------------------------------------------------------------------------
// A reusable N-party barrier from one mutex + one condvar.

struct Barrier {
    m: Mutex,
    cv: Condvar,
    needed: usize,
    arrived: AtomicUsize,
    generation: AtomicUsize,
}

impl Barrier {
    fn new(needed: usize) -> Barrier {
        Barrier {
            m: Mutex::new(SyncType::DEFAULT),
            cv: Condvar::new(SyncType::DEFAULT),
            needed,
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    fn wait(&self) {
        self.m.enter();
        let gen = self.generation.load(Ordering::Relaxed);
        if self.arrived.fetch_add(1, Ordering::Relaxed) + 1 == self.needed {
            self.arrived.store(0, Ordering::Relaxed);
            self.generation.fetch_add(1, Ordering::Relaxed);
            self.cv.broadcast();
        } else {
            while self.generation.load(Ordering::Relaxed) == gen {
                self.cv.wait(&self.m);
            }
        }
        self.m.exit();
    }
}

#[test]
fn condvar_barrier_keeps_lockstep() {
    const PARTIES: usize = 6;
    const ROUNDS: usize = 50;
    let bar = Arc::new(Barrier::new(PARTIES));
    let round_counts = Arc::new((0..ROUNDS).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>());
    let mut ids = Vec::new();
    for _ in 0..PARTIES {
        let bar = Arc::clone(&bar);
        let rc = Arc::clone(&round_counts);
        ids.push(
            ThreadBuilder::new()
                .flags(CreateFlags::WAIT)
                .spawn(move || {
                    for r in 0..ROUNDS {
                        rc[r].fetch_add(1, Ordering::SeqCst);
                        bar.wait();
                        // After the barrier, the whole round must be in.
                        assert_eq!(
                            rc[r].load(Ordering::SeqCst),
                            PARTIES,
                            "barrier released early in round {r}"
                        );
                    }
                })
                .expect("spawn"),
        );
    }
    for id in ids {
        threads::wait(Some(id)).expect("wait");
    }
}
