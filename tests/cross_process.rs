//! FIG1 integration: synchronization variables in `MAP_SHARED` files used
//! by *real* cooperating processes (re-executions of this test binary).
//!
//! Each test checks `child_role()` first: when this binary is re-executed
//! as a cooperating child, exactly one test body performs the child
//! protocol and every other test no-ops, so recursion stops at depth one.

use std::sync::atomic::{AtomicU64, Ordering};

use sunos_mt::shm::{ipc, SharedFile};
use sunos_mt::sync::{Mutex, RwLock, RwType, Sema, SyncType};

fn in_child_for(role: &str) -> Option<SharedFile> {
    match ipc::child_role() {
        Some(r) if r == role => {
            let path = ipc::child_shared_path().expect("child shared path");
            Some(SharedFile::open(path).expect("child open"))
        }
        _ => None,
    }
}

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("sunmt-xp-{}-{name}", std::process::id()))
}

#[test]
fn cross_process_mutex_excludes() {
    const ITERS: u64 = 10_000;
    if let Some(f) = in_child_for("xp-mutex") {
        // SAFETY: Parent laid out (Mutex, AtomicU64, Sema) at 0/64/128.
        let m: &Mutex = unsafe { f.sync_var(0) };
        let counter: &AtomicU64 = unsafe { f.sync_var(64) };
        let done: &Sema = unsafe { f.sync_var(128) };
        for _ in 0..ITERS {
            m.enter();
            let v = counter.load(Ordering::Relaxed);
            counter.store(v + 1, Ordering::Relaxed);
            m.exit();
        }
        done.v();
        std::process::exit(0);
    }
    if ipc::child_role().is_some() {
        return; // Some other test's child run; not ours.
    }

    let path = tmp("mutex");
    let f = SharedFile::create(&path, 4096).expect("create");
    // SAFETY: Aligned, in-bounds, zero-valid.
    let m: &Mutex = unsafe { f.sync_var(0) };
    let counter: &AtomicU64 = unsafe { f.sync_var(64) };
    let done: &Sema = unsafe { f.sync_var(128) };
    m.init(SyncType::SHARED);
    done.init(0, SyncType::SHARED);
    let mut child = ipc::spawn_cooperating_env("xp-mutex", &path).expect("spawn");
    for _ in 0..ITERS {
        m.enter();
        let v = counter.load(Ordering::Relaxed);
        counter.store(v + 1, Ordering::Relaxed);
        m.exit();
    }
    done.p();
    assert!(child.wait().expect("child").success());
    assert_eq!(
        counter.load(Ordering::SeqCst),
        2 * ITERS,
        "cross-process mutual exclusion violated"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn cross_process_sema_ping_pong() {
    const ROUNDS: usize = 2_000;
    if let Some(f) = in_child_for("xp-sema") {
        // SAFETY: Parent laid out two shared semaphores at 0/64.
        let s1: &Sema = unsafe { f.sync_var(0) };
        let s2: &Sema = unsafe { f.sync_var(64) };
        for _ in 0..ROUNDS {
            s1.p();
            s2.v();
        }
        std::process::exit(0);
    }
    if ipc::child_role().is_some() {
        return;
    }

    let path = tmp("sema");
    let f = SharedFile::create(&path, 4096).expect("create");
    // SAFETY: Aligned, in-bounds, zero-valid.
    let s1: &Sema = unsafe { f.sync_var(0) };
    let s2: &Sema = unsafe { f.sync_var(64) };
    s1.init(0, SyncType::SHARED);
    s2.init(0, SyncType::SHARED);
    let mut child = ipc::spawn_cooperating_env("xp-sema", &path).expect("spawn");
    for _ in 0..ROUNDS {
        s1.v();
        s2.p();
    }
    assert!(child.wait().expect("child").success());
    assert_eq!(s1.count(), 0);
    assert_eq!(s2.count(), 0);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn cross_process_rwlock_readers_share_writers_exclude() {
    if let Some(f) = in_child_for("xp-rw") {
        // SAFETY: Parent laid out (RwLock, Sema go, Sema ack) at 0/64/128.
        let l: &RwLock = unsafe { f.sync_var(0) };
        let go: &Sema = unsafe { f.sync_var(64) };
        let ack: &Sema = unsafe { f.sync_var(128) };
        // Step 1: take a reader lock, tell the parent, hold until told.
        l.enter(RwType::Reader);
        ack.v();
        go.p();
        l.exit();
        ack.v();
        std::process::exit(0);
    }
    if ipc::child_role().is_some() {
        return;
    }

    let path = tmp("rw");
    let f = SharedFile::create(&path, 4096).expect("create");
    // SAFETY: Aligned, in-bounds, zero-valid.
    let l: &RwLock = unsafe { f.sync_var(0) };
    let go: &Sema = unsafe { f.sync_var(64) };
    let ack: &Sema = unsafe { f.sync_var(128) };
    l.init(SyncType::SHARED);
    go.init(0, SyncType::SHARED);
    ack.init(0, SyncType::SHARED);
    let mut child = ipc::spawn_cooperating_env("xp-rw", &path).expect("spawn");

    ack.p(); // Child holds a reader lock now.
    assert!(
        l.try_enter(RwType::Reader),
        "two processes must share the read lock"
    );
    l.exit();
    assert!(
        !l.try_enter(RwType::Writer),
        "a writer must be excluded by the other process's reader"
    );
    go.v(); // Release the child.
    ack.p(); // Child dropped its lock.
    assert!(l.try_enter(RwType::Writer), "lock must be free now");
    l.exit();
    assert!(child.wait().expect("child").success());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn lock_state_outlives_a_processes_mapping() {
    if ipc::child_role().is_some() {
        return;
    }
    // "Synchronization variables can also be placed in files and have
    // lifetimes beyond that of the creating process."
    let path = tmp("lifetime");
    {
        let f = SharedFile::create(&path, 4096).expect("create");
        // SAFETY: Aligned, in-bounds, zero-valid.
        let s: &Sema = unsafe { f.sync_var(0) };
        s.init(0, SyncType::SHARED);
        s.v();
        s.v();
    } // Mapping gone; file remains.
    let f = SharedFile::open(&path).expect("reopen");
    // SAFETY: Same layout.
    let s: &Sema = unsafe { f.sync_var(0) };
    assert_eq!(s.count(), 2, "semaphore state must persist in the file");
    assert!(s.try_p());
    assert!(s.try_p());
    assert!(!s.try_p());
    let _ = std::fs::remove_file(&path);
}
