//! Sharded-poller races at the public API.
//!
//! Two hazards the per-LWP poller shards introduce are pinned here:
//!
//! 1. **Close-while-parked.** A waiter parks on whatever shard its LWP
//!    picked; `sunmt_io::close` must sweep *every* shard's fd table and
//!    error the waiter out with `EBADF` — the kernel silently drops a
//!    closed fd from its epoll sets, so a missed sweep means a thread
//!    asleep forever on an fd that can never fire.
//!
//! 2. **Timer liveness under batch stealing.** `cv_timedwait` deadlines
//!    are serviced independently of the poller; churning registrations
//!    across shards (arming, flushing, stealing ctl batches) must not
//!    starve or stretch them.
//!
//! Everything lives in ONE `#[test]`: the shard count is process-global
//! (fixed at first poller use), and pool accounting is process-wide.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sunos_mt::io as sunmt_io;
use sunos_mt::sync::{Condvar, Mutex, SyncType};
use sunos_mt::sys::errno::Errno;
use sunos_mt::threads::{self, CreateFlags, ThreadBuilder};

const CLOSED_READERS: usize = 8;
const CHURN_PAIRS: usize = 4;
const TIMED_ROUNDS: usize = 5;
const TIMEOUT: Duration = Duration::from_millis(40);

#[test]
fn close_errors_parked_waiters_and_timedwait_survives_shard_churn() {
    // Multiple shards before the poller's first use, so waiters spread
    // across several epoll sets and close() has to find the right one.
    std::env::set_var("SUNMT_IO_SHARDS", "4");
    threads::init();
    threads::set_concurrency(4).expect("pin the pool at 4 LWPs");

    // --- Phase 1: close fds out from under parked waiters. -------------
    let pipes: Vec<(i32, i32)> = (0..CLOSED_READERS)
        .map(|_| sunmt_io::pipe().expect("pipe"))
        .collect();
    let errored = Arc::new(AtomicUsize::new(0));
    let ids: Vec<_> = pipes
        .iter()
        .map(|&(r, _)| {
            let errored = Arc::clone(&errored);
            ThreadBuilder::new()
                .flags(CreateFlags::WAIT)
                .spawn(move || {
                    let mut buf = [0u8; 8];
                    // The read end is closed while we are parked: the
                    // poller must hand us EBADF, not leave us asleep.
                    match sunmt_io::read(r, &mut buf) {
                        Err(Errno::EBADF) => {
                            errored.fetch_add(1, Ordering::SeqCst);
                        }
                        other => panic!("expected EBADF after close, got {other:?}"),
                    }
                })
                .expect("spawn reader")
        })
        .collect();

    // Wait until every reader is parked in a shard's fd table.
    let deadline = Instant::now() + Duration::from_secs(10);
    while sunmt_io::stats().pending_waiters < CLOSED_READERS {
        assert!(
            Instant::now() < deadline,
            "readers never parked: {:?}",
            sunmt_io::stats()
        );
        threads::yield_now();
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(
        sunmt_io::stats().shards >= 2,
        "test needs a sharded poller, got {} shard(s)",
        sunmt_io::stats().shards
    );

    for &(r, w) in &pipes {
        sunmt_io::close(r).expect("close read end");
        sunmt_io::close(w).expect("close write end");
    }
    for id in ids {
        threads::wait(Some(id)).expect("join reader");
    }
    assert_eq!(errored.load(Ordering::SeqCst), CLOSED_READERS);

    // --- Phase 2: cv_timedwait deadlines under cross-shard churn. ------
    // Blocking echo ping-pong between thread pairs: each side parks in
    // `read` until its peer responds, so every round trip is two poller
    // registrations (arming, flushing, and — when one LWP lags —
    // stealing siblings' ctl batches), and the parked threads keep the
    // pool LWPs free for the timed waiter.
    let stop = Arc::new(AtomicBool::new(false));
    let mut churners = Vec::new();
    for i in 0..CHURN_PAIRS {
        let (a, b) = sunmt_io::socketpair_stream().expect("socketpair");
        churners.push(
            ThreadBuilder::new()
                .flags(CreateFlags::WAIT)
                .spawn(move || {
                    // Echo side: read until the client hangs up.
                    let mut buf = [0u8; 1];
                    loop {
                        match sunmt_io::read(b, &mut buf) {
                            Ok(0) => break,
                            Ok(n) => sunmt_io::write_all(b, &buf[..n]).expect("echo write"),
                            Err(e) => panic!("echo read: {e:?}"),
                        }
                    }
                    sunmt_io::close(b).ok();
                })
                .expect("spawn echo"),
        );
        let stop = Arc::clone(&stop);
        churners.push(
            ThreadBuilder::new()
                .flags(CreateFlags::WAIT)
                .spawn(move || {
                    // Client side: blocking round trips until told to stop.
                    let mut buf = [0u8; 1];
                    while !stop.load(Ordering::SeqCst) {
                        sunmt_io::write_all(a, &[i as u8]).expect("churn write");
                        let n = sunmt_io::read(a, &mut buf).expect("churn read");
                        assert_eq!(n, 1);
                        assert_eq!(buf[0], i as u8);
                    }
                    sunmt_io::close(a).ok();
                })
                .expect("spawn client"),
        );
    }

    struct Mon {
        m: Mutex,
        cv: Condvar,
    }
    let mon = Arc::new(Mon {
        m: Mutex::new(SyncType::DEFAULT),
        cv: Condvar::new(SyncType::DEFAULT),
    });
    let timed = {
        let mon = Arc::clone(&mon);
        ThreadBuilder::new()
            .flags(CreateFlags::WAIT)
            .spawn(move || {
                for round in 0..TIMED_ROUNDS {
                    mon.m.enter();
                    let start = Instant::now();
                    // Nobody ever signals: every round must time out, and
                    // the deadline must hold (not stretch) while the
                    // poller shards churn.
                    let signaled = mon.cv.timed_wait(&mon.m, TIMEOUT);
                    let elapsed = start.elapsed();
                    mon.m.exit();
                    assert!(!signaled, "round {round}: phantom signal");
                    assert!(
                        elapsed >= TIMEOUT - Duration::from_millis(5),
                        "round {round}: woke {elapsed:?} before the {TIMEOUT:?} deadline"
                    );
                    assert!(
                        elapsed < Duration::from_secs(5),
                        "round {round}: deadline stretched to {elapsed:?} under io churn"
                    );
                }
            })
            .expect("spawn timed waiter")
    };
    threads::wait(Some(timed)).expect("join timed waiter");
    stop.store(true, Ordering::SeqCst);
    for id in churners {
        threads::wait(Some(id)).expect("join churner");
    }

    let s = sunmt_io::stats();
    assert!(s.batch_flushes > 0, "no ctl batches were flushed: {s:?}");
    assert!(
        s.batched_ops >= s.registrations,
        "ops should cover arms: {s:?}"
    );
}
