//! The seeded regression corpus for the schedule-exploration checker.
//!
//! Each entry is a schedule string that `sunmt-check` printed during
//! development — harvested from real exhaustive-DFS and PCT-fuzz runs —
//! committed so the exact interleaving replays deterministically forever.
//! If a model, the micro-step machines, or the simkernel's dispatch
//! placement ever changes behaviour, these replays are the first thing
//! that notices: a corpus entry either stops producing its recorded
//! outcome or stops being replayable at all.
//!
//! Harvest new entries with `cargo run -p sunmt-check -- run` (failures
//! print `FAILING SCHEDULE: v1/...`) and verify them with
//! `cargo run -p sunmt-check -- replay <string>` before committing.

use sunmt_check::{models, replay, ScheduleString};

/// `(schedule string, substring the classified failure must contain;
/// empty string = the run must pass)`.
const CORPUS: &[(&str, &str)] = &[
    // The check-then-wait race: the consumer tests the flag outside the
    // mutex, the producer's signal lands while nobody waits, and the
    // consumer sleeps forever. Found by the exhaustive sweep.
    ("v1/neg_lost_wakeup/default/1.0.1.1.1", "lost wakeup"),
    // Same interleaving under the kernel-visible SYNC_SHARED parking.
    ("v1/neg_lost_wakeup/shared/1.0.1.1.1", "lost wakeup"),
    // AB-BA: both threads get their first lock, then both park on the
    // other's. Found by the exhaustive sweep.
    ("v1/neg_lock_cycle/default/1.0.0.0.1.1.1", "deadlock"),
    ("v1/neg_lock_cycle/shared/1.0.0.0.1.1.1", "deadlock"),
    // DEBUG-variant misuse models fail on every schedule, including the
    // empty (serial) one.
    ("v1/neg_debug_recursive/debug/-", "recursive"),
    ("v1/neg_debug_unlock/debug/-", "non-owner"),
    // Adversarial passing schedules: maximal alternation through the
    // mutex fast/slow paths, the cv consumer-first handoff, and the
    // tryupgrade race (one upgrades, the loser falls back to a write
    // enter) must all stay correct.
    ("v1/mutex_basic/default/1.1.1.1.1.1.1.1.1", ""),
    ("v1/cv_pingpong/shared/1.1.0.1", ""),
    ("v1/rw_tryupgrade/default/1.1.1.1.1", ""),
    // The lockless-steal negative: both thieves peek shard 0's head
    // before either removes it, and the same item dispatches twice.
    // Found by the exhaustive sweep.
    (
        "v1/neg_runq_double_steal/default/1.1.0.1.1.1.1.1.0.0",
        "dispatched twice",
    ),
    (
        "v1/neg_runq_double_steal/shared/1.1.0.1.1.1.1.1.0.0",
        "dispatched twice",
    ),
    // Sharded-runq handoff: shard 1's dispatcher steals shard 0's item,
    // shard 0's dispatcher parks idle, and the injected item wakes it —
    // steal, park, and injection wakeup in one passing schedule.
    ("v1/runq_steal/default/0.1", ""),
    // Adaptive mutex: the second thread spins while the holder runs,
    // then acquires cleanly on release.
    ("v1/mutex_adaptive/default/0.1.0.1.0.1", ""),
    // Wait morphing: one waiter parks on the cv, the broadcast (issued
    // with the mutex held) wakes it and requeues the rest onto the
    // mutex queue instead of thundering — the cv-requeue event fires
    // and everyone still observes the flag.
    ("v1/cv_morph/default/0.0.0.1.1.1.2.2.2.2.2", ""),
    // The morphed-timeout race: the broadcast moves the timed waiter
    // onto the mutex queue, the broadcaster sleeps past the deadline
    // while still holding the mutex, and the seeded-buggy machine
    // reports ETIME for a wakeup it already consumed. Found by the
    // exhaustive sweep.
    (
        "v1/neg_cv_morph_timeout/default/0.2.2.2.2.0.1.1.1.1.1.1.1",
        "timed_out=true",
    ),
    // Channel lost wakeup: the receiver finds the ring empty, the send
    // commits and fires its wakeup before the receiver registers, and
    // the buggy no-recheck variant parks anyway with a message queued.
    // Found by the exhaustive sweep.
    ("v1/neg_chan_lost_wakeup/default/1.0.1.1.1", "lost wakeup"),
    // Peek-then-pop double receive: both racy receivers peek message 0
    // before either pops, so one accounts a message the other already
    // took. Found by the exhaustive sweep.
    (
        "v1/neg_chan_double_recv/default/1.1.0.1.1.1.1.1.0.0",
        "received twice",
    ),
    // Select variant of the lost wakeup: the racy selector scans its
    // ports *before* registering hooks, so the send that lands between
    // scan and park never fires a hook. Found by the exhaustive sweep.
    ("v1/neg_chan_select_race/default/1.0.1.1.1", "lost wakeup"),
    // Adversarial passing schedules: maximal alternation through the
    // MPSC commit/wake/park machine, and a select interleaving where
    // both producers race the selector's hook registration, must both
    // deliver every message exactly once.
    ("v1/chan_mpsc/default/1.1.1.1.1.1.1.1.1.1.1.1", ""),
    ("v1/chan_select/default/1.1.0.1.1.0.1.1", ""),
    // Poller-shard lost wakeup: the racy waiter enqueues its arm op and
    // kicks the shard before joining the fd table; the flush arms the fd
    // and the kernel event delivers into an empty table, so the waiter
    // parks forever on readiness that already fired. Found by the
    // exhaustive sweep.
    (
        "v1/neg_io_lost_wakeup/default/1.1.0.0.0.0.0.1",
        "lost wakeup",
    ),
    // The MCS lost handoff: thread 1 swaps itself in as the queue tail,
    // and before it can store the predecessor link the seeded-buggy exit
    // sees next==null, skips the tail check, and releases anyway — the
    // successor then links to a departed node and parks forever on a
    // lock nobody holds. Found by the exhaustive sweep.
    (
        "v1/neg_mcs_lost_handoff/default/0.0.0.1.1.1",
        "lost handoff",
    ),
    // Adversarial passing schedules through the queue locks: maximal
    // alternation drives every enter through the queued slow path
    // (mutex-queue-wait fires) and every release through the wake or
    // node-to-node handoff (mutex-handoff fires), and the FIFO/handoff
    // oracles must stay silent — for the ticket protocol also under the
    // cross-process SYNC_SHARED parking, and for MCS also under DEBUG
    // ownership bookkeeping.
    ("v1/mutex_ticket/default/1.1.1.1.1.1.1.1.1.1.1.1", ""),
    ("v1/mutex_ticket/shared/1.1.1.1.1.1.1.1.1.1.1.1", ""),
    ("v1/mutex_mcs/default/1.1.1.1.1.1.1.1.1.1.1.1", ""),
    ("v1/mutex_mcs/debug/2.1.2.1.2.1.2.1.2.1", ""),
    // Adversarial passing schedule through the sharded poller: shard 1's
    // batch is stolen by the idle sibling, shard 0's flusher parks empty
    // and is kicked awake by the registration, and one fd's readiness
    // fires *before* its arm — the level-triggered re-report still
    // delivers both wakeups.
    ("v1/io_shard/default/1.1.1.1.1.1.1.1.1.1.1.1", ""),
    // The unbounded priority inversion: the tick preempts the low-priority
    // lock holder while the high-priority waiter is already parked on its
    // mutex, and the middle-priority hog stays runnable — without priority
    // inheritance nothing ever outranks the hog on the holder's behalf, so
    // the waiter's wait is unbounded. Found by the exhaustive sweep.
    (
        "v1/neg_pi_unbounded_inversion/default/0.2.2.2.1.2.2.2.2.2.2.0.1.0",
        "unbounded priority inversion",
    ),
    // Adversarial passing schedule through the same triangle with priority
    // inheritance on: the parking waiter boosts the holder to its own
    // priority (pi-boost fires), the tick then finds the boosted holder
    // outranking the middle hog so the preempt gate holds it on its
    // processor, and the release strips the boost (pi-strip fires) before
    // handing the lock over — the inversion oracle must stay silent.
    (
        "v1/mutex_adaptive_pi/default/0.2.2.2.1.2.2.2.2.2.2.0.1.0",
        "",
    ),
];

#[test]
fn corpus_replays_to_recorded_outcomes() {
    let catalogue = models::catalogue();
    for (s, needle) in CORPUS {
        let sched = ScheduleString::parse(s).unwrap_or_else(|e| panic!("{s}: {e}"));
        let out = replay(&catalogue, &sched).unwrap_or_else(|e| panic!("{s}: {e}"));
        match (needle.is_empty(), &out.failure) {
            (true, None) => {}
            (false, Some(msg)) if msg.contains(needle) => {}
            (_, got) => panic!("{s}: expected {needle:?}, got {got:?}"),
        }
    }
}

#[test]
fn corpus_replays_are_deterministic() {
    // Replaying twice gives byte-identical choices and event logs —
    // the property that makes a printed schedule string a bug report.
    let catalogue = models::catalogue();
    for (s, _) in CORPUS {
        let sched = ScheduleString::parse(s).unwrap();
        let a = replay(&catalogue, &sched).unwrap();
        let b = replay(&catalogue, &sched).unwrap();
        assert_eq!(a.taken, b.taken, "{s}");
        assert_eq!(a.failure, b.failure, "{s}");
        assert_eq!(format!("{:?}", a.events), format!("{:?}", b.events), "{s}");
    }
}

#[test]
fn corpus_strings_round_trip_their_schedules() {
    // A failure found live must print a string that parses back to the
    // same choices the run took (taken[..] extends or equals the forced
    // prefix once the run ends).
    let catalogue = models::catalogue();
    for (s, _) in CORPUS {
        let sched = ScheduleString::parse(s).unwrap();
        let out = replay(&catalogue, &sched).unwrap();
        let reprinted = ScheduleString {
            model: sched.model.clone(),
            variant: sched.variant,
            choices: out.taken.clone(),
        };
        let again = replay(&catalogue, &reprinted).unwrap();
        assert_eq!(out.taken, again.taken, "{s}");
        assert_eq!(out.failure, again.failure, "{s}");
    }
}
