//! Thread-local ("unshared") storage: the success path, in its own process
//! so registration reliably precedes the first thread.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, OnceLock};

use sunos_mt::threads::tls::{errno, Unshared};
use sunos_mt::threads::{self, CreateFlags, ThreadBuilder};

// Register everything once, before any test creates a thread. Test order
// within this file is arbitrary, so registration goes through a OnceLock
// touched by every test first.
struct Keys {
    counter: Unshared<u64>,
    flag: Unshared<bool>,
    aligned: Unshared<u64>,
    byte: Unshared<u8>,
}

fn keys() -> &'static Keys {
    static KEYS: OnceLock<Keys> = OnceLock::new();
    KEYS.get_or_init(|| {
        let keys = Keys {
            counter: Unshared::register().expect("register before first thread"),
            flag: Unshared::register().expect("register"),
            byte: Unshared::register().expect("register"),
            aligned: Unshared::register().expect("register"),
        };
        // errno registers lazily inside this call, then the first access
        // adopts the calling thread and freezes the layout — so it must be
        // the *last* registration.
        errno::set(0);
        keys
    })
}

#[test]
fn each_thread_sees_zeroed_private_copy() {
    let k = keys();
    k.counter.set(111);
    k.flag.set(true);
    let observed = Arc::new(AtomicI64::new(-1));
    let o = Arc::clone(&observed);
    let id = ThreadBuilder::new()
        .flags(CreateFlags::WAIT)
        .spawn(move || {
            let k = keys();
            // "The contents of thread-local storage are zeroed, initially."
            assert_eq!(k.counter.get(), 0);
            assert!(!k.flag.get());
            k.counter.set(222);
            o.store(k.counter.get() as i64, Ordering::SeqCst);
        })
        .expect("spawn");
    threads::wait(Some(id)).expect("wait");
    assert_eq!(observed.load(Ordering::SeqCst), 222);
    // Our copy is untouched by the other thread's writes.
    assert_eq!(k.counter.get(), 111);
    assert!(k.flag.get());
}

#[test]
fn errno_is_per_thread() {
    // The paper's worked example: "each thread has its own copy of
    // thread-local variables ... errno is a good example."
    let _ = keys();
    errno::set(42);
    let child_errno = Arc::new(AtomicI64::new(-1));
    let c = Arc::clone(&child_errno);
    let id = ThreadBuilder::new()
        .flags(CreateFlags::WAIT)
        .spawn(move || {
            assert_eq!(errno::get(), 0, "fresh thread starts with errno 0");
            errno::set(7);
            c.store(errno::get() as i64, Ordering::SeqCst);
        })
        .expect("spawn");
    threads::wait(Some(id)).expect("wait");
    assert_eq!(child_errno.load(Ordering::SeqCst), 7);
    assert_eq!(errno::get(), 42, "the child's errno must not leak here");
}

#[test]
fn unshared_variables_are_aligned() {
    let k = keys();
    // A u64 slot registered after a u8 must still be readable/writable
    // (i.e. the registration aligned its offset).
    k.byte.set(0xAB);
    k.aligned.set(0xDEAD_BEEF_CAFE_F00D);
    assert_eq!(k.byte.get(), 0xAB);
    assert_eq!(k.aligned.get(), 0xDEAD_BEEF_CAFE_F00D);
}

#[test]
fn registration_after_first_thread_fails() {
    let _ = keys();
    // Force the freeze by creating a thread.
    let id = ThreadBuilder::new()
        .flags(CreateFlags::WAIT)
        .spawn(|| {})
        .expect("spawn");
    threads::wait(Some(id)).expect("wait");
    // "Once the size is computed it is not changed."
    assert!(Unshared::<u32>::register().is_err());
    assert!(sunos_mt::threads::tls::is_frozen());
}

#[test]
fn many_threads_many_copies() {
    let k = keys();
    const N: usize = 64;
    let mut ids = Vec::new();
    for i in 0..N as u64 {
        ids.push(
            ThreadBuilder::new()
                .flags(CreateFlags::WAIT)
                .spawn(move || {
                    let k = keys();
                    assert_eq!(k.counter.get(), 0);
                    k.counter.set(i + 1);
                    threads::yield_now(); // Interleave with other threads.
                    assert_eq!(k.counter.get(), i + 1, "another thread corrupted my TLS");
                })
                .expect("spawn"),
        );
    }
    for id in ids {
        threads::wait(Some(id)).expect("wait");
    }
    let _ = k;
}
