//! Whole-architecture integration: the two-level model under combined
//! load — bound and unbound threads, every synchronization type, pool
//! reconfiguration, stop/continue, and blocking regions, all at once.

use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use sunos_mt::sync::{Condvar, Mutex, RwLock, RwType, Sema, SyncType};
use sunos_mt::threads::{self, blocking, CreateFlags, ThreadBuilder};

#[test]
fn mixed_bound_and_unbound_threads_share_every_primitive() {
    struct World {
        m: Mutex,
        cv: Condvar,
        rw: RwLock,
        sem: Sema,
        counter: AtomicUsize,
        phase: AtomicU32,
    }
    let w = Arc::new(World {
        m: Mutex::new(SyncType::DEFAULT),
        cv: Condvar::new(SyncType::DEFAULT),
        rw: RwLock::new(SyncType::DEFAULT),
        sem: Sema::new(0, SyncType::DEFAULT),
        counter: AtomicUsize::new(0),
        phase: AtomicU32::new(0),
    });
    const PER_KIND: usize = 6;
    let mut ids = Vec::new();
    for i in 0..PER_KIND * 2 {
        let flags = if i % 2 == 0 {
            CreateFlags::WAIT
        } else {
            CreateFlags::WAIT | CreateFlags::BIND_LWP
        };
        let w = Arc::clone(&w);
        ids.push(
            ThreadBuilder::new()
                .flags(flags)
                .spawn(move || {
                    // Phase 0: wait on the monitor for the green light.
                    w.m.enter();
                    while w.phase.load(Ordering::Relaxed) == 0 {
                        w.cv.wait(&w.m);
                    }
                    w.m.exit();
                    // Phase 1: hammer the rwlock (readers + one writer each).
                    for _ in 0..50 {
                        w.rw.enter(RwType::Reader);
                        w.rw.exit();
                    }
                    w.rw.enter(RwType::Writer);
                    w.counter.fetch_add(1, Ordering::SeqCst);
                    w.rw.exit();
                    // Phase 2: signal completion.
                    w.sem.v();
                })
                .expect("spawn"),
        );
    }
    std::thread::sleep(Duration::from_millis(20));
    w.m.enter();
    w.phase.store(1, Ordering::Relaxed);
    w.cv.broadcast();
    w.m.exit();
    for _ in 0..PER_KIND * 2 {
        w.sem.p();
    }
    for id in ids {
        threads::wait(Some(id)).expect("wait");
    }
    assert_eq!(w.counter.load(Ordering::SeqCst), PER_KIND * 2);
}

#[test]
fn pool_reconfiguration_under_load() {
    let stop = Arc::new(AtomicU32::new(0));
    let spins = Arc::new(AtomicUsize::new(0));
    let mut ids = Vec::new();
    for _ in 0..8 {
        let (stop, spins) = (Arc::clone(&stop), Arc::clone(&spins));
        ids.push(
            ThreadBuilder::new()
                .flags(CreateFlags::WAIT)
                .spawn(move || {
                    while stop.load(Ordering::Relaxed) == 0 {
                        spins.fetch_add(1, Ordering::Relaxed);
                        threads::yield_now();
                    }
                })
                .expect("spawn"),
        );
    }
    // Shrink and grow the pool while the threads churn.
    for n in [4usize, 1, 6, 2, 3] {
        threads::set_concurrency(n).expect("setconcurrency");
        std::thread::sleep(Duration::from_millis(10));
    }
    let before = spins.load(Ordering::Relaxed);
    std::thread::sleep(Duration::from_millis(20));
    assert!(
        spins.load(Ordering::Relaxed) > before,
        "threads must keep making progress through reconfiguration"
    );
    stop.store(1, Ordering::Relaxed);
    for id in ids {
        threads::wait(Some(id)).expect("wait");
    }
    threads::set_concurrency(0).expect("setconcurrency");
}

#[test]
fn blocking_regions_do_not_starve_runnable_threads() {
    // Several threads sit in indefinite blocking regions while compute
    // threads keep running — the SIGWAITING machinery in anger.
    let release = Arc::new(AtomicU32::new(0));
    let computed = Arc::new(AtomicUsize::new(0));
    let mut ids = Vec::new();
    for _ in 0..4 {
        let r = Arc::clone(&release);
        ids.push(
            ThreadBuilder::new()
                .flags(CreateFlags::WAIT)
                .spawn(move || {
                    blocking(|| {
                        while r.load(Ordering::Relaxed) == 0 {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                    });
                })
                .expect("spawn"),
        );
    }
    for _ in 0..4 {
        let c = Arc::clone(&computed);
        ids.push(
            ThreadBuilder::new()
                .flags(CreateFlags::WAIT)
                .spawn(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                })
                .expect("spawn"),
        );
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while computed.load(Ordering::SeqCst) < 4 {
        assert!(
            std::time::Instant::now() < deadline,
            "compute threads starved behind blocking regions"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    release.store(1, Ordering::Relaxed);
    for id in ids {
        threads::wait(Some(id)).expect("wait");
    }
}

#[test]
fn stop_continue_cycles_are_lossless() {
    let progress = Arc::new(AtomicUsize::new(0));
    let stop_flag = Arc::new(AtomicU32::new(0));
    let (p, s) = (Arc::clone(&progress), Arc::clone(&stop_flag));
    let id = ThreadBuilder::new()
        .flags(CreateFlags::WAIT)
        .spawn(move || {
            while s.load(Ordering::Relaxed) == 0 {
                p.fetch_add(1, Ordering::Relaxed);
                threads::yield_now();
            }
        })
        .expect("spawn");
    for _ in 0..10 {
        threads::stop(Some(id)).expect("stop");
        let frozen = progress.load(Ordering::SeqCst);
        std::thread::sleep(Duration::from_millis(3));
        assert_eq!(progress.load(Ordering::SeqCst), frozen);
        threads::cont(id).expect("continue");
        // Give it a moment to run again.
        std::thread::sleep(Duration::from_millis(3));
    }
    stop_flag.store(1, Ordering::Relaxed);
    threads::wait(Some(id)).expect("wait");
}

#[test]
fn deep_creation_chain() {
    // Threads creating threads creating threads — creation from any
    // context, as in the paper's model.
    fn chain(depth: usize, done: Arc<Sema>) {
        if depth == 0 {
            done.v();
            return;
        }
        let id = ThreadBuilder::new()
            .flags(CreateFlags::WAIT)
            .spawn(move || chain(depth - 1, done))
            .expect("spawn");
        threads::wait(Some(id)).expect("wait");
    }
    let done = Arc::new(Sema::new(0, SyncType::DEFAULT));
    chain(32, Arc::clone(&done));
    done.p();
}

#[test]
fn thousands_of_threads_exist_concurrently() {
    // The paper's scale claim: "there can be thousands present".
    const N: usize = 2_000;
    let gate = Arc::new(Sema::new(0, SyncType::DEFAULT));
    let mut ids = Vec::with_capacity(N);
    for _ in 0..N {
        let g = Arc::clone(&gate);
        ids.push(
            ThreadBuilder::new()
                .flags(CreateFlags::WAIT)
                .spawn(move || g.p())
                .expect("spawn"),
        );
    }
    // All N threads are alive right now, blocked on one semaphore.
    let stats = threads::stats();
    assert!(
        stats.live_threads >= N,
        "expected >= {N} live threads, saw {}",
        stats.live_threads
    );
    for _ in 0..N {
        gate.v();
    }
    for id in ids {
        threads::wait(Some(id)).expect("wait");
    }
}
