//! Thread/stack magazine regression tests.
//!
//! Steady-state unbound create/exit must recycle both the thread
//! structure and the stack through the per-LWP magazines (no fresh
//! `mmap`, no fresh allocation), and a recycled stack must still carry
//! its `PROT_NONE` guard page — recycling skips re-running the mapping
//! setup, so the protection established at creation has to survive.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use sunos_mt::context::stack::DEFAULT_STACK_SIZE;
use sunos_mt::sys::mem::PAGE_SIZE;
use sunos_mt::threads::{self, CreateFlags, ThreadBuilder};
use sunos_mt::trace::{self, Tag};

/// Trace counters and pool concurrency are process-global; take turns.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

const WARMUP: usize = 32;
const PROBES: usize = 8;

/// Create-and-join one unbound thread, returning the address of a stack
/// local inside it — a point provably within its stack mapping.
fn churn_one() -> usize {
    let mark = Arc::new(AtomicUsize::new(0));
    let m = Arc::clone(&mark);
    let id = ThreadBuilder::new()
        .flags(CreateFlags::WAIT)
        .spawn(move || {
            let probe = 0u8;
            m.store(&probe as *const u8 as usize, Ordering::SeqCst);
        })
        .expect("spawn");
    threads::wait(Some(id)).expect("join");
    let addr = mark.load(Ordering::SeqCst);
    assert_ne!(addr, 0, "thread never ran");
    addr
}

/// Whether `addr` falls within the default-sized stack whose interior
/// point `mark` was recorded earlier. Cached stacks stay mapped, so a
/// fresh `mmap` can never land inside one of these ranges — overlap
/// proves the mapping itself was reused.
fn same_stack(addr: usize, mark: usize) -> bool {
    mark.abs_diff(addr) < DEFAULT_STACK_SIZE
}

#[test]
fn steady_state_churn_recycles_threads_and_stacks() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    // One pool LWP: every exit retires into the same magazine, so the
    // depot drains predictably once the warmup overflows it.
    threads::set_concurrency(1).expect("setconcurrency");

    let warmup: Vec<usize> = (0..WARMUP).map(|_| churn_one()).collect();

    trace::enable();
    let probes: Vec<usize> = (0..PROBES).map(|_| churn_one()).collect();
    trace::disable();

    let reused = probes
        .iter()
        .filter(|a| warmup.iter().any(|w| same_stack(**a, *w)))
        .count();
    assert!(
        reused >= 1,
        "none of {PROBES} post-warmup stacks landed in a warmup mapping: \
         probes={probes:x?} warmup={warmup:x?}"
    );

    // The magazines must report the recycling: MagazineHit a=1 is a
    // recycled thread structure, b=1 a recycled stack.
    let events = trace::drain();
    let thread_hits = events
        .iter()
        .filter(|e| e.tag == Tag::MagazineHit && e.a == 1)
        .count();
    let stack_hits = events
        .iter()
        .filter(|e| e.tag == Tag::MagazineHit && e.b == 1)
        .count();
    assert!(
        thread_hits >= 1,
        "{PROBES} creates after warmup never recycled a thread structure"
    );
    assert!(
        stack_hits >= 1,
        "{PROBES} creates after warmup never recycled a stack"
    );

    threads::set_concurrency(0).expect("setconcurrency(0)");
}

#[test]
fn recycled_stack_keeps_its_guard_page() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    threads::set_concurrency(1).expect("setconcurrency");

    let warmup: Vec<usize> = (0..WARMUP).map(|_| churn_one()).collect();
    let recycled = (0..PROBES)
        .map(|_| churn_one())
        .find(|a| warmup.iter().any(|w| same_stack(*a, *w)))
        .expect("no post-warmup thread reused a warmup stack");

    // The stack is parked in a magazine now, so its mapping is still
    // live in /proc/self/maps. The vma containing the recorded interior
    // point must sit directly above an inaccessible (`---p`) guard vma.
    let maps = std::fs::read_to_string("/proc/self/maps").expect("read maps");
    let mut regions = Vec::new();
    for line in maps.lines() {
        let (range, rest) = line.split_once(' ').expect("maps line");
        let (lo, hi) = range.split_once('-').expect("maps range");
        let lo = usize::from_str_radix(lo, 16).expect("maps lo");
        let hi = usize::from_str_radix(hi, 16).expect("maps hi");
        let perms = rest.split(' ').next().expect("maps perms");
        regions.push((lo, hi, perms.to_string()));
    }
    let &(lo, _, ref perms) = regions
        .iter()
        .find(|(lo, hi, _)| (*lo..*hi).contains(&recycled))
        .expect("recycled stack address not in any mapping");
    assert!(
        perms.starts_with("rw"),
        "stack vma is {perms}, not writable"
    );
    let guard = regions
        .iter()
        .find(|(_, hi, _)| *hi == lo)
        .expect("no vma directly below the recycled stack");
    assert!(
        guard.2.starts_with("---"),
        "vma below recycled stack is {}, not an inaccessible guard",
        guard.2
    );
    assert!(
        guard.1 - guard.0 >= PAGE_SIZE,
        "guard vma is smaller than a page"
    );

    threads::set_concurrency(0).expect("setconcurrency(0)");
}
