//! Wakeup-path regression tests for wait morphing.
//!
//! `cv_broadcast` with the mutex held must hand the herd to the mutex's
//! queue instead of waking everyone at once — at most two futex syscalls
//! for any number of waiters — and a deadline that fires while a waiter
//! sits morphed on the mutex queue must still be reported as a signal,
//! because the waiter already consumed a wakeup a sibling will never get.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sunos_mt::sync::{Condvar, Mutex, SyncType};
use sunos_mt::threads::{self, CreateFlags, ThreadBuilder};
use sunos_mt::trace::{self, Tag};

/// Trace counters are process-global, so the counting tests take turns.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

const WAITERS: usize = 32;

struct Monitor {
    m: Mutex,
    cv: Condvar,
    go: AtomicBool,
    entered: AtomicUsize,
}

impl Monitor {
    fn new() -> Monitor {
        Monitor {
            m: Mutex::new(SyncType::DEFAULT),
            cv: Condvar::new(SyncType::DEFAULT),
            go: AtomicBool::new(false),
            entered: AtomicUsize::new(0),
        }
    }

    /// Blocks until `n` waiters have released the mutex inside their wait.
    /// Holding the mutex while reading the count proves anyone who bumped
    /// it has since left the monitor; the grace sleep lets the stragglers
    /// finish parking.
    fn await_waiters(&self, n: usize) {
        loop {
            self.m.enter();
            let seen = self.entered.load(Ordering::SeqCst);
            self.m.exit();
            if seen == n {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn broadcast_morphs_instead_of_thundering() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    trace::enable();

    let mon = Arc::new(Monitor::new());
    let mut ids = Vec::new();
    for _ in 0..WAITERS {
        let s = Arc::clone(&mon);
        ids.push(
            ThreadBuilder::new()
                .flags(CreateFlags::WAIT)
                .spawn(move || {
                    s.m.enter();
                    s.entered.fetch_add(1, Ordering::SeqCst);
                    while !s.go.load(Ordering::SeqCst) {
                        s.cv.wait(&s.m);
                    }
                    s.m.exit();
                })
                .expect("spawn waiter"),
        );
    }
    mon.await_waiters(WAITERS);

    // Broadcast with the mutex held: `requeue_target` marks it contended
    // and the herd morphs onto its queue, so the whole wakeup costs at
    // most two futex syscalls (the wake-one-requeue-rest, plus at worst
    // one wake-all fallback) — not one per waiter.
    mon.m.enter();
    mon.go.store(true, Ordering::SeqCst);
    let before = trace::counters();
    mon.cv.broadcast();
    let after = trace::counters();
    mon.m.exit();

    let wakes = after.get(Tag::FutexWake) - before.get(Tag::FutexWake);
    let requeues = after.get(Tag::CvRequeue) - before.get(Tag::CvRequeue);
    assert!(
        wakes <= 2,
        "broadcast to {WAITERS} waiters issued {wakes} futex wake syscalls"
    );
    assert!(requeues >= 1, "broadcast never took the morph path");

    for id in ids {
        threads::wait(Some(id)).expect("join waiter");
    }
    trace::disable();
}

#[test]
fn deadline_during_morph_is_still_a_signal() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());

    let mon = Arc::new(Monitor::new());
    let s = Arc::clone(&mon);
    let id = ThreadBuilder::new()
        .flags(CreateFlags::WAIT)
        .spawn(move || {
            s.m.enter();
            s.entered.fetch_add(1, Ordering::SeqCst);
            let mut signaled = true;
            while !s.go.load(Ordering::SeqCst) {
                signaled = s.cv.timed_wait(&s.m, Duration::from_secs(1));
                if !signaled {
                    break;
                }
            }
            s.m.exit();
            assert!(
                s.go.load(Ordering::SeqCst),
                "waiter timed out before the broadcast arrived"
            );
            assert!(
                signaled,
                "deadline fired while morphed on the mutex queue and was \
                 wrongly reported as a timeout"
            );
        })
        .expect("spawn waiter");
    mon.await_waiters(1);

    // Broadcast, then keep holding the mutex until well past the waiter's
    // deadline: the timer fires while the waiter sits morphed on the
    // mutex queue, and the timeout must be voided because the broadcast
    // already committed a wakeup to this thread.
    let t0 = Instant::now();
    mon.m.enter();
    mon.go.store(true, Ordering::SeqCst);
    mon.cv.broadcast();
    std::thread::sleep(Duration::from_millis(1_300));
    mon.m.exit();
    assert!(
        t0.elapsed() >= Duration::from_millis(1_200),
        "broadcaster released the mutex before the deadline could fire"
    );

    threads::wait(Some(id)).expect("join waiter");
}
