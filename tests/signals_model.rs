//! The paper's signal model across threads: traps to the causing thread,
//! interrupts to any unmasked thread, process-pending while all mask,
//! `thread_kill` targeting, and `sigsend(P_THREAD_ALL)` broadcast.

use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use sunos_mt::threads::signals::{self, sig, Disposition, MaskHow};
use sunos_mt::threads::{self, CreateFlags, ThreadBuilder};

fn install_counter(signo: u32) -> Arc<AtomicUsize> {
    let hits = Arc::new(AtomicUsize::new(0));
    let h = Arc::clone(&hits);
    signals::set_disposition(
        signo,
        Disposition::Handler(Arc::new(move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        })),
    )
    .expect("set_disposition");
    hits
}

#[test]
fn thread_kill_reaches_only_the_target() {
    let hits = install_counter(sig::SIGIO);
    let target_ran = Arc::new(AtomicU32::new(0));
    let release = Arc::new(AtomicU32::new(0));
    let (t, r) = (Arc::clone(&target_ran), Arc::clone(&release));
    let victim = ThreadBuilder::new()
        .flags(CreateFlags::WAIT)
        .spawn(move || {
            t.store(threads::get_id().0, Ordering::SeqCst);
            while r.load(Ordering::SeqCst) == 0 {
                threads::yield_now(); // Delivery point.
            }
        })
        .expect("spawn");
    while target_ran.load(Ordering::SeqCst) == 0 {
        std::thread::sleep(Duration::from_millis(1));
    }
    let before = hits.load(Ordering::SeqCst);
    signals::thread_kill(victim, sig::SIGIO).expect("thread_kill");
    // The victim yields in a loop, so it reaches a delivery point promptly.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while hits.load(Ordering::SeqCst) == before {
        assert!(
            std::time::Instant::now() < deadline,
            "signal never delivered"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    release.store(1, Ordering::SeqCst);
    threads::wait(Some(victim)).expect("wait");
}

#[test]
fn interrupt_pends_on_process_while_all_threads_mask_it() {
    let hits = install_counter(sig::SIGALRM);
    let bit = 1u64 << sig::SIGALRM;
    // Mask in this thread; helper threads also mask, then one unmasks.
    let old = signals::thread_sigsetmask(MaskHow::Block, bit);
    let release = Arc::new(AtomicU32::new(0));
    let r = Arc::clone(&release);
    let masked_helper = ThreadBuilder::new()
        .flags(CreateFlags::WAIT)
        .spawn(move || {
            signals::thread_sigsetmask(MaskHow::Block, bit);
            while r.load(Ordering::SeqCst) == 0 {
                threads::yield_now();
            }
        })
        .expect("spawn");
    std::thread::sleep(Duration::from_millis(10));

    let before = hits.load(Ordering::SeqCst);
    signals::send_interrupt(sig::SIGALRM).expect("send_interrupt");
    std::thread::sleep(Duration::from_millis(20));
    // Nobody can take it yet (this thread and the helper mask it; other
    // tests' threads are not guaranteed, so only assert the unmask path).
    // "If all threads mask a signal, it will pend on the process until a
    // thread unmasks that signal."
    signals::thread_sigsetmask(MaskHow::Unblock, bit);
    assert!(
        hits.load(Ordering::SeqCst) > before,
        "unmasking must deliver the process-pending interrupt"
    );
    release.store(1, Ordering::SeqCst);
    threads::wait(Some(masked_helper)).expect("wait");
    signals::thread_sigsetmask(MaskHow::SetMask, old);
}

#[test]
fn sigsend_all_reaches_every_thread() {
    let hits = install_counter(sig::SIGVTALRM);
    const N: usize = 4;
    let running = Arc::new(AtomicUsize::new(0));
    let release = Arc::new(AtomicU32::new(0));
    let mut ids = Vec::new();
    for _ in 0..N {
        let (run, rel) = (Arc::clone(&running), Arc::clone(&release));
        ids.push(
            ThreadBuilder::new()
                .flags(CreateFlags::WAIT)
                .spawn(move || {
                    run.fetch_add(1, Ordering::SeqCst);
                    while rel.load(Ordering::SeqCst) == 0 {
                        threads::yield_now();
                    }
                })
                .expect("spawn"),
        );
    }
    while running.load(Ordering::SeqCst) < N {
        std::thread::sleep(Duration::from_millis(1));
    }
    let before = hits.load(Ordering::SeqCst);
    signals::sigsend_all(sig::SIGVTALRM).expect("sigsend_all");
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    // At least the N helpers (plus possibly this thread) deliver.
    while hits.load(Ordering::SeqCst) < before + N {
        assert!(
            std::time::Instant::now() < deadline,
            "broadcast reached only {} of {N}",
            hits.load(Ordering::SeqCst) - before
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    release.store(1, Ordering::SeqCst);
    for id in ids {
        threads::wait(Some(id)).expect("wait");
    }
}

#[test]
fn traps_stay_with_the_causing_thread() {
    let hits = install_counter(sig::SIGFPE);
    let which = Arc::new(AtomicU32::new(0));
    let w = Arc::clone(&which);
    let h2 = Arc::clone(&hits);
    let id = ThreadBuilder::new()
        .flags(CreateFlags::WAIT)
        .spawn(move || {
            let before = h2.load(Ordering::SeqCst);
            signals::raise_trap(sig::SIGFPE).expect("raise_trap");
            // Synchronous delivery on this thread.
            assert_eq!(h2.load(Ordering::SeqCst), before + 1);
            w.store(1, Ordering::SeqCst);
        })
        .expect("spawn");
    threads::wait(Some(id)).expect("wait");
    assert_eq!(which.load(Ordering::SeqCst), 1);
}

#[test]
fn per_thread_masks_are_independent_and_inherited() {
    let bit = 1u64 << sig::SIGINT;
    let old = signals::thread_sigsetmask(MaskHow::Block, bit);
    let child_mask = Arc::new(AtomicU32::new(0));
    let c = Arc::clone(&child_mask);
    let id = ThreadBuilder::new()
        .flags(CreateFlags::WAIT)
        .spawn(move || {
            // "The initial ... signal mask is set to the same values as
            // its creator."
            let inherited = signals::current_mask();
            c.store(((inherited & bit) != 0) as u32, Ordering::SeqCst);
            // Changing ours must not touch the parent's.
            signals::thread_sigsetmask(MaskHow::Unblock, bit);
        })
        .expect("spawn");
    threads::wait(Some(id)).expect("wait");
    assert_eq!(
        child_mask.load(Ordering::SeqCst),
        1,
        "mask must be inherited"
    );
    assert_ne!(
        signals::current_mask() & bit,
        0,
        "parent mask must be intact"
    );
    signals::thread_sigsetmask(MaskHow::SetMask, old);
}
