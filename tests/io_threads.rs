//! ABL-IO acceptance: thread-aware blocking I/O keeps the window-server
//! workload on a tiny LWP pool.
//!
//! With a pool pinned at 2 LWPs and 64 unbound threads all "blocked" in
//! `sunmt_io::read` on idle pipes, every thread must be parked on the
//! user-level sleep queue (not on an LWP), no `SIGWAITING` pool growth may
//! occur, and all 64 must complete once data arrives. The LWP-economy
//! claim is then re-measured with the shared ABL-IO runner and checked
//! against the committed `BENCH_io.json` trajectory file.
//!
//! Everything lives in ONE `#[test]`: the assertions are about
//! process-wide pool accounting, which concurrent sibling tests in the
//! same binary would perturb.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sunmt_bench::io_bench;
use sunos_mt::io as sunmt_io;
use sunos_mt::threads::{self, CreateFlags, ThreadBuilder};

const READERS: usize = 64;

#[test]
fn parked_io_waiters_do_not_grow_the_pool_and_all_complete() {
    threads::init();
    threads::set_concurrency(2).expect("pin the pool at 2 LWPs");

    // --- Phase 1: 64 unbound threads block reading idle pipes. ---------
    let pipes: Vec<(i32, i32)> = (0..READERS)
        .map(|_| sunmt_io::pipe().expect("pipe"))
        .collect();
    let grows_before = threads::stats().pool_grows;
    let done = Arc::new(AtomicUsize::new(0));

    let ids: Vec<_> = pipes
        .iter()
        .enumerate()
        .map(|(i, &(r, _))| {
            let done = Arc::clone(&done);
            ThreadBuilder::new()
                .flags(CreateFlags::WAIT)
                .spawn(move || {
                    let mut buf = [0u8; 8];
                    let n = sunmt_io::read(r, &mut buf).expect("reader");
                    assert_eq!(n, 1, "reader {i} got {n} bytes");
                    assert_eq!(buf[0], (i % 251) as u8, "reader {i} got wrong byte");
                    done.fetch_add(1, Ordering::SeqCst);
                })
                .expect("spawn reader")
        })
        .collect();

    // All 64 must end up *sleeping at user level* — i.e. parked through the
    // poller, their LWPs free — not blocked in the kernel.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let s = threads::stats();
        if s.sleeping >= READERS {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "only {} of {READERS} I/O waiters reached the sleep queue \
             (runnable={}, pool={})",
            s.sleeping,
            s.runnable,
            s.pool_lwps
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // Idle I/O waiters must not look like a deadlock: no SIGWAITING growth.
    let s = threads::stats();
    assert_eq!(
        s.pool_grows, grows_before,
        "parked I/O waiters triggered pool growth"
    );
    assert_eq!(s.pool_lwps, 2, "the pool must still be pinned at 2 LWPs");
    assert!(
        sunmt_io::stats().pending_waiters >= READERS,
        "the poller must be holding all {READERS} waiters"
    );

    // Data arrives; every thread must complete.
    for (i, &(_, w)) in pipes.iter().enumerate() {
        sunmt_io::write_all(w, &[(i % 251) as u8]).expect("writer");
    }
    for id in ids {
        threads::wait(Some(id)).expect("join reader");
    }
    assert_eq!(done.load(Ordering::SeqCst), READERS);
    for &(r, w) in &pipes {
        let _ = sunmt_io::close(r);
        let _ = sunmt_io::close(w);
    }

    // --- Phase 2: the ABL-IO economy claim, re-measured. ---------------
    let (mn, bound) = io_bench::run_abl_io(16, 3);
    assert!(
        mn.lwps_peak < bound.lwps_peak,
        "M:N must use strictly fewer LWPs than one-per-client \
         (mn {} vs bound {})",
        mn.lwps_peak,
        bound.lwps_peak
    );
    assert_eq!(mn.pool_grows, 0, "M:N phase must not grow the pool");

    // --- Phase 3: the committed trajectory file agrees. ----------------
    let json = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_io.json"))
        .expect(
        "BENCH_io.json must be committed (cargo run --bin abl_io_server -- --json BENCH_io.json)",
    );
    let (mn_lwps, bound_lwps) =
        parse_lwp_note(&json).expect("BENCH_io.json must carry a 'mn_lwps=A bound_lwps=B' note");
    assert!(
        mn_lwps < bound_lwps,
        "committed BENCH_io.json must show M:N using strictly fewer LWPs \
         (mn_lwps={mn_lwps} bound_lwps={bound_lwps})"
    );
}

/// Extracts `(A, B)` from the `mn_lwps=A bound_lwps=B ...` note.
fn parse_lwp_note(json: &str) -> Option<(usize, usize)> {
    let grab = |key: &str| -> Option<usize> {
        let at = json.find(key)? + key.len();
        let digits: String = json[at..]
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .collect();
        digits.parse().ok()
    };
    Some((grab("mn_lwps=")?, grab("bound_lwps=")?))
}
